"""The unreliable, bandwidth-constrained transport.

:class:`Network` ties the substrate together.  Sending a datagram goes
through four stages, mirroring the paper's deployment:

1. the *sender's upload limiter* either queues it (adding serialization /
   throttling delay) or drops it when the backlog is full (congestion loss);
2. the *loss model* may drop it in flight (random UDP loss);
3. the *latency model* assigns a one-way propagation delay;
4. the datagram is delivered to the receiver's handler — unless the receiver
   has failed (churn) or was never registered.

There is no acknowledgement or retransmission at this layer; reliability is
the gossip protocol's job (request retries, FEC).

Observers
---------
Every fate a datagram can meet is exposed as an observer edge
(:meth:`Network.add_observer`): accepted by the upload limiter, dropped by
congestion, lost in flight, delivered to a live handler, or dropped at a
dead/unregistered receiver — plus node failure/recovery transitions.  The
validation layer (:mod:`repro.validation`) registers invariant checkers on
these edges; with no observers registered each send pays one ``is None``
test, keeping the hot path at its pre-observer cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.simulation.engine import Simulator
from repro.simulation.rng import RngRegistry

from repro.network.bandwidth import BandwidthCap, UploadLimiter
from repro.network.latency import ConstantLatency, LatencyModel, PerNodeQualityLatency
from repro.network.loss import LossModel, NoLoss, UniformLoss
from repro.network.message import Message, NodeId
from repro.network.stats import TrafficStats

MessageHandler = Callable[[Message], None]


class _Endpoint:
    """One registered node: handler, upload limiter and liveness.

    Grouping the three into a single slotted record keeps the per-datagram
    fast path at one dictionary lookup per side (sender, receiver) instead
    of three, which is visible at millions of sends per session.
    """

    __slots__ = ("handler", "limiter", "alive")

    def __init__(self, handler: MessageHandler, limiter: UploadLimiter) -> None:
        self.handler = handler
        self.limiter = limiter
        self.alive = True


@dataclass
class NetworkConfig:
    """Declarative description of a network substrate.

    Used by the experiment harness to build comparable networks across
    parameter sweeps.  All rates are in kbps; latencies in seconds.

    Attributes
    ----------
    upload_cap_kbps:
        Default per-node upload cap; ``None`` means unlimited.
    max_backlog_seconds:
        Throttling queue capacity, in seconds of serialization at the cap.
    latency_model:
        One of ``"constant"``, ``"uniform"``, ``"lognormal"``, ``"per-node"``.
    base_latency:
        Mean/median one-way latency in seconds.
    random_loss:
        Probability of in-flight loss per datagram (0 disables the model).
    """

    upload_cap_kbps: Optional[float] = 700.0
    max_backlog_seconds: float = 10.0
    latency_model: str = "per-node"
    base_latency: float = 0.05
    random_loss: float = 0.01
    per_node_caps_kbps: Dict[NodeId, Optional[float]] = field(default_factory=dict)

    def build_cap(self, node_id: NodeId) -> BandwidthCap:
        """The upload cap to apply to ``node_id``."""
        kbps = self.per_node_caps_kbps.get(node_id, self.upload_cap_kbps)
        return BandwidthCap.from_kbps(kbps, max_backlog_seconds=self.max_backlog_seconds)

    def build_latency(
        self, rng: RngRegistry, node_ids: list[NodeId], per_sender: bool = False
    ) -> LatencyModel:
        """Instantiate the configured latency model.

        ``per_sender=True`` keys the per-datagram draws by sending node (the
        placement-invariant mode the sharded runner requires); the default
        shares one stream, preserving the pre-sharding draw order bit for
        bit.
        """
        if self.latency_model == "constant":
            return ConstantLatency(self.base_latency)
        if self.latency_model == "uniform":
            from repro.network.latency import UniformLatency

            return UniformLatency(
                rng,
                low=self.base_latency * 0.4,
                high=self.base_latency * 2.0,
                per_sender=per_sender,
            )
        if self.latency_model == "lognormal":
            from repro.network.latency import LogNormalLatency

            return LogNormalLatency(rng, median=self.base_latency, per_sender=per_sender)
        if self.latency_model == "per-node":
            return PerNodeQualityLatency(
                rng, node_ids, base=self.base_latency, per_sender=per_sender
            )
        raise ValueError(f"unknown latency model {self.latency_model!r}")

    def build_loss(self, rng: RngRegistry, per_sender: bool = False) -> LossModel:
        """Instantiate the configured in-flight loss model."""
        if self.random_loss <= 0.0:
            return NoLoss()
        return UniformLoss(rng, probability=self.random_loss, per_sender=per_sender)


class DatagramRouter(ABC):
    """Decides where an accepted, un-lost datagram's delivery is scheduled.

    The transport computes each datagram's absolute delivery time (upload
    serialization plus propagation latency) and normally schedules the
    delivery on its own simulator.  With a router installed
    (:meth:`Network.set_router`) that decision is delegated: the sharded
    runner's router schedules locally owned receivers via
    :meth:`Network.schedule_delivery` and diverts everything else into the
    current time window's per-destination outbound batches — packed into the
    columnar wire format (:mod:`repro.shard.wire`) at the window flush — to
    be re-scheduled verbatim on the receiver's shard at the next barrier.

    Routers sit *after* the limiter and loss stages on purpose: congestion
    and in-flight loss are sender-side physics and stay on the sender's
    shard no matter where the receiver lives.
    """

    @abstractmethod
    def dispatch(self, message: Message, deliver_time: float) -> None:
        """Route one datagram due for delivery at absolute ``deliver_time``."""


class Network:
    """Routes datagrams between registered endpoints.

    Parameters
    ----------
    simulator:
        The discrete-event simulator used for timing.
    latency_model / loss_model:
        Substrate behaviour; see :mod:`repro.network.latency` and
        :mod:`repro.network.loss`.
    stats:
        Optional shared :class:`TrafficStats`; one is created if omitted.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        loss_model: Optional[LossModel] = None,
        stats: Optional[TrafficStats] = None,
    ) -> None:
        self._simulator = simulator
        self._latency = latency_model if latency_model is not None else ConstantLatency()
        self._loss = loss_model if loss_model is not None else NoLoss()
        self._endpoints: Dict[NodeId, _Endpoint] = {}
        self.stats = stats if stats is not None else TrafficStats()
        self._observers: Optional[List[Any]] = None
        # ``None`` when deliveries are scheduled locally (the scalar path):
        # like observers, the hot path then pays one identity test per send.
        self._router: Optional[DatagramRouter] = None

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------
    def register(
        self,
        node_id: NodeId,
        handler: MessageHandler,
        cap: Optional[BandwidthCap] = None,
    ) -> None:
        """Attach an endpoint.  ``cap`` defaults to unlimited upload."""
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} is already registered")
        limiter = UploadLimiter(cap if cap is not None else BandwidthCap.unlimited())
        self._endpoints[node_id] = _Endpoint(handler, limiter)

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` has been registered on this network."""
        return node_id in self._endpoints

    def is_alive(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is registered and has not failed."""
        endpoint = self._endpoints.get(node_id)
        return endpoint is not None and endpoint.alive

    def fail_node(self, node_id: NodeId) -> None:
        """Crash a node: it stops sending and receiving immediately."""
        endpoint = self._endpoints.get(node_id)
        if endpoint is not None:
            endpoint.alive = False
            if self._observers is not None:
                now = self._simulator.now
                for observer in self._observers:
                    observer.on_node_failed(node_id, now)

    def recover_node(self, node_id: NodeId) -> None:
        """Bring a previously failed node back (its state is untouched)."""
        endpoint = self._endpoints.get(node_id)
        if endpoint is not None:
            endpoint.alive = True
            if self._observers is not None:
                now = self._simulator.now
                for observer in self._observers:
                    observer.on_node_recovered(node_id, now)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Register a transport observer (see
        :class:`repro.validation.observers.TransportObserver` for the edge
        methods and their exact firing points)."""
        if self._observers is None:
            self._observers = []
        self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        """Unregister a transport observer (restores the zero-cost path)."""
        if self._observers is not None:
            self._observers.remove(observer)
            if not self._observers:
                self._observers = None

    def limiter(self, node_id: NodeId) -> UploadLimiter:
        """The upload limiter of ``node_id`` (for inspection in experiments)."""
        return self._endpoints[node_id].limiter

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model in use."""
        return self._latency

    @property
    def loss_model(self) -> LossModel:
        """The in-flight loss model in use."""
        return self._loss

    def min_latency(self) -> float:
        """Minimum possible propagation delay of this substrate.

        The transport's contribution to the sharded backend's conservative
        lookahead: serialization delay is non-negative, so no datagram sent
        at ``t`` can be delivered before ``t + min_latency()``.
        """
        return self._latency.min_latency()

    # ------------------------------------------------------------------
    # Routing (the shard seam)
    # ------------------------------------------------------------------
    def set_router(self, router: Optional[DatagramRouter]) -> None:
        """Install (or, with ``None``, remove) a delivery router."""
        self._router = router

    def schedule_delivery(self, message: Message, deliver_time: float) -> None:
        """Schedule a routed datagram's delivery at absolute ``deliver_time``.

        Called by routers for locally owned receivers and by the shard
        runner when unpacking a window's inbound batch.  The time is applied
        verbatim so a delivery crossing a shard boundary lands at the bit-
        identical instant the scalar run would have used.
        """
        self._simulator.schedule_fire_and_forget_at(deliver_time, self._deliver, message)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Send ``message`` from its sender to its receiver.

        Returns ``True`` if the datagram was accepted by the sender's upload
        limiter (it may still be lost in flight or arrive at a dead node),
        ``False`` if it was dropped locally (dead sender or congestion).
        """
        sender = message.sender
        endpoint = self._endpoints.get(sender)
        if endpoint is None or not endpoint.alive:
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_send_blocked(message, self._simulator.now)
            return False
        now = self._simulator.now
        finish_time = endpoint.limiter.enqueue(message.size_bytes, now)
        if finish_time is None:
            self.stats.record_congestion_drop(sender, message.kind, message.size_bytes)
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_congestion_drop(message, now)
            return False
        self.stats.record_sent(sender, message.kind, message.size_bytes)
        if self._observers is not None:
            for observer in self._observers:
                observer.on_send_accepted(message, now, finish_time)

        if self._loss.is_lost(message):
            self.stats.record_in_flight_loss(sender, message.kind, message.size_bytes)
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_in_flight_loss(message, now)
            return True

        delay = (finish_time - now) + self._latency.sample(sender, message.receiver)
        if self._router is not None:
            # ``now`` is the clock value schedule_fire_and_forget would add
            # ``delay`` to, so the router sees the exact delivery instant.
            self._router.dispatch(message, now + delay)
            return True
        # Deliveries are scheduled by the million and never cancelled:
        # fire-and-forget scheduling skips the per-event handle allocation.
        self._simulator.schedule_fire_and_forget(delay, self._deliver, message)
        return True

    def send_many(self, messages: List[Message]) -> int:
        """Send a same-sender burst offered at the current instant.

        Exactly equivalent to calling :meth:`send` once per message in
        order — same limiter serialization chain, same per-message loss and
        latency draws (the RNG consumption order is preserved), same
        delivery event ordering — but the sender endpoint is resolved once
        and the upload limiter processes the burst through
        :meth:`~repro.network.bandwidth.UploadLimiter.enqueue_many`.
        Protocol fan-outs (PROPOSE to every partner, a SERVE burst answering
        one request) are the intended callers.

        Returns the number of datagrams accepted by the upload limiter.
        """
        if not messages:
            return 0
        if self._observers is not None:
            # Observer edges must fire per datagram in the exact scalar
            # interleaving; the batch fast path is for unobserved runs.
            accepted = 0
            for message in messages:
                if self.send(message):
                    accepted += 1
            return accepted
        sender = messages[0].sender
        for message in messages:
            if message.sender != sender:
                raise ValueError(
                    f"send_many requires a single sender, got {message.sender!r} "
                    f"after {sender!r}"
                )
        endpoint = self._endpoints.get(sender)
        if endpoint is None or not endpoint.alive:
            return 0
        now = self._simulator.now
        finish_times = endpoint.limiter.enqueue_many(
            [message.size_bytes for message in messages], now
        )
        stats = self.stats
        loss = self._loss
        latency_sample = self._latency.sample
        router = self._router
        schedule = self._simulator.schedule_fire_and_forget
        deliver = self._deliver
        accepted = 0
        for message, finish_time in zip(messages, finish_times):
            if finish_time is None:
                stats.record_congestion_drop(sender, message.kind, message.size_bytes)
                continue
            accepted += 1
            stats.record_sent(sender, message.kind, message.size_bytes)
            if loss.is_lost(message):
                stats.record_in_flight_loss(sender, message.kind, message.size_bytes)
                continue
            delay = (finish_time - now) + latency_sample(sender, message.receiver)
            if router is not None:
                router.dispatch(message, now + delay)
            else:
                schedule(delay, deliver, message)
        return accepted

    def _deliver(self, message: Message) -> None:
        receiver = message.receiver
        endpoint = self._endpoints.get(receiver)
        if endpoint is None or not endpoint.alive:
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_delivery_dropped(message, self._simulator.now)
            return
        self.stats.record_received(receiver, message.kind, message.size_bytes)
        if self._observers is not None:
            # Observers fire before the handler: anything the handler sends
            # in reaction (e.g. a SERVE answering this REQUEST) must observe
            # the delivery that caused it as already having happened.
            for observer in self._observers:
                observer.on_delivered(message, self._simulator.now)
        endpoint.handler(message)
