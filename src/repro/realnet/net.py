"""The UDP transport: real sockets behind the simulated network's interface.

:class:`UdpNetwork` mirrors :class:`repro.network.transport.Network` method
for method — ``register`` / ``send`` / ``send_many`` / ``fail_node`` /
observers / ``stats`` — but the delivery leg is an actual asyncio datagram
endpoint per node instead of an event-queue entry.  The sender-side physics
is *shared with the simulator by construction*:

1. the same :class:`~repro.network.bandwidth.UploadLimiter` answers when a
   datagram's last byte leaves the node (or drops it on a full backlog);
2. the same loss model may discard it in flight (drawn from per-sender RNG
   streams so real-time interleaving cannot perturb the draws);
3. the same latency model contributes the modeled propagation delay — the
   ``sendto`` is scheduled at the *virtual* instant the simulator would
   have delivered the datagram, and the real localhost transit (~0.1 ms)
   rides on top.

Every datagram fate fires the same observer edge at the same point in the
pipeline as the simulated transport, so the PR 4 validation observers and
the PR 7 trace recorder work on this backend unchanged and traces are
schema-identical across backends.

What stays genuinely *real*: the payload bytes cross the kernel (padded to
their modeled size, see :mod:`repro.realnet.codec`), delivery order and
socket backpressure are the operating system's, and a dropped datagram is
gone — there is no global event queue to fall back on.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.network.bandwidth import BandwidthCap, UploadLimiter
from repro.network.latency import LatencyModel
from repro.network.loss import LossModel
from repro.network.message import Message, NodeId
from repro.network.stats import TrafficStats
from repro.network.transport import MessageHandler

from repro.realnet.codec import decode_message, encode_message
from repro.realnet.errors import RealNetStateError
from repro.realnet.host import AsyncioHost
from repro.realnet.ports import Address, PortPlan, address_of, bind_node_socket


class _NodeProtocol(asyncio.DatagramProtocol):
    """Datagram receiver of one node: decode and hand to the network."""

    def __init__(self, network: "UdpNetwork", node_id: NodeId) -> None:
        self._network = network
        self._node_id = node_id

    def datagram_received(self, data: bytes, addr: Address) -> None:
        """Decode one datagram and run the delivery pipeline."""
        self._network._on_datagram(self._node_id, data)


class _UdpEndpoint:
    """One registered node: handler, limiter, liveness, socket, transport."""

    __slots__ = ("handler", "limiter", "alive", "sock", "address", "transport")

    def __init__(self, handler: MessageHandler, limiter: UploadLimiter, sock, address) -> None:
        self.handler = handler
        self.limiter = limiter
        self.alive = True
        self.sock = sock
        self.address: Address = address
        self.transport: Optional[asyncio.DatagramTransport] = None


class UdpNetwork:
    """Routes datagrams between nodes over real asyncio UDP sockets.

    Parameters
    ----------
    host:
        The :class:`~repro.realnet.host.AsyncioHost` providing virtual time
        and timer scheduling.  The network registers its endpoint open and
        close coroutines as the host's startup/shutdown hooks.
    latency_model / loss_model:
        Substrate physics, emulated sender-side exactly as the simulated
        transport applies them.  Models should be built with
        ``per_sender=True`` RNG streams (see module docstring).
    plan:
        Port allocation policy; defaults to kernel-assigned loopback ports.
    stats:
        Optional shared :class:`TrafficStats`; one is created if omitted.
    """

    def __init__(
        self,
        host: AsyncioHost,
        latency_model: LatencyModel,
        loss_model: LossModel,
        plan: Optional[PortPlan] = None,
        stats: Optional[TrafficStats] = None,
    ) -> None:
        self._host = host
        self._latency = latency_model
        self._loss = loss_model
        self._plan = plan if plan is not None else PortPlan()
        self._endpoints: Dict[NodeId, _UdpEndpoint] = {}
        self.stats = stats if stats is not None else TrafficStats()
        self._observers: Optional[List[Any]] = None
        self._open = False
        self.datagrams_sent = 0
        self.datagrams_received = 0
        host.add_startup_hook(self.open)
        host.add_shutdown_hook(self.close)

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------
    def register(
        self,
        node_id: NodeId,
        handler: MessageHandler,
        cap: Optional[BandwidthCap] = None,
    ) -> None:
        """Attach an endpoint: binds the node's UDP socket immediately.

        ``cap`` defaults to unlimited upload, as on the simulated network.
        """
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} is already registered")
        if self._open:
            raise RealNetStateError("cannot register nodes after endpoints opened")
        sock = bind_node_socket(self._plan, node_id)
        limiter = UploadLimiter(cap if cap is not None else BandwidthCap.unlimited())
        self._endpoints[node_id] = _UdpEndpoint(handler, limiter, sock, address_of(sock))

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` has been registered on this network."""
        return node_id in self._endpoints

    def is_alive(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is registered and has not failed."""
        endpoint = self._endpoints.get(node_id)
        return endpoint is not None and endpoint.alive

    def address(self, node_id: NodeId) -> Address:
        """The ``(host, port)`` a node's socket is bound to."""
        return self._endpoints[node_id].address

    def fail_node(self, node_id: NodeId) -> None:
        """Crash a node: it stops sending and receiving immediately.

        The socket stays open so datagrams already committed to the wire
        drain into the dead endpoint (and are observed as
        ``on_delivery_dropped``), matching the simulated transport's
        in-flight semantics.
        """
        endpoint = self._endpoints.get(node_id)
        if endpoint is not None:
            endpoint.alive = False
            if self._observers is not None:
                now = self._host.now
                for observer in self._observers:
                    observer.on_node_failed(node_id, now)

    def recover_node(self, node_id: NodeId) -> None:
        """Bring a previously failed node back (its state is untouched)."""
        endpoint = self._endpoints.get(node_id)
        if endpoint is not None:
            endpoint.alive = True
            if self._observers is not None:
                now = self._host.now
                for observer in self._observers:
                    observer.on_node_recovered(node_id, now)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Register a transport observer (same edges as the simulated net)."""
        if self._observers is None:
            self._observers = []
        self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        """Unregister a transport observer."""
        if self._observers is not None:
            self._observers.remove(observer)
            if not self._observers:
                self._observers = None

    def limiter(self, node_id: NodeId) -> UploadLimiter:
        """The upload limiter of ``node_id`` (for inspection)."""
        return self._endpoints[node_id].limiter

    @property
    def latency_model(self) -> LatencyModel:
        """The emulated propagation-latency model."""
        return self._latency

    @property
    def loss_model(self) -> LossModel:
        """The emulated in-flight loss model."""
        return self._loss

    def min_latency(self) -> float:
        """Minimum modeled propagation delay (the real wire adds ~0.1 ms)."""
        return self._latency.min_latency()

    # ------------------------------------------------------------------
    # Endpoint lifecycle (host startup/shutdown hooks)
    # ------------------------------------------------------------------
    async def open(self) -> None:
        """Open one datagram endpoint per registered node (idempotent)."""
        if self._open:
            return
        loop = asyncio.get_running_loop()
        for node_id, endpoint in self._endpoints.items():
            transport, _ = await loop.create_datagram_endpoint(
                lambda nid=node_id: _NodeProtocol(self, nid), sock=endpoint.sock
            )
            endpoint.transport = transport
        self._open = True

    async def close(self) -> None:
        """Close every endpoint's transport and socket (idempotent)."""
        for endpoint in self._endpoints.values():
            if endpoint.transport is not None:
                endpoint.transport.close()
                endpoint.transport = None
        self._open = False
        # Yield once so transport close callbacks run before the loop dies.
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Send ``message`` through the sender-side physics onto the wire.

        Same return contract as the simulated transport: ``True`` when the
        upload limiter accepted the datagram (it may still be lost or reach
        a dead node), ``False`` on a local drop.
        """
        sender = message.sender
        endpoint = self._endpoints.get(sender)
        if endpoint is None or not endpoint.alive:
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_send_blocked(message, self._host.now)
            return False
        now = self._host.now
        finish_time = endpoint.limiter.enqueue(message.size_bytes, now)
        if finish_time is None:
            self.stats.record_congestion_drop(sender, message.kind, message.size_bytes)
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_congestion_drop(message, now)
            return False
        self.stats.record_sent(sender, message.kind, message.size_bytes)
        if self._observers is not None:
            for observer in self._observers:
                observer.on_send_accepted(message, now, finish_time)

        if self._loss.is_lost(message):
            self.stats.record_in_flight_loss(sender, message.kind, message.size_bytes)
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_in_flight_loss(message, now)
            return True

        delay = (finish_time - now) + self._latency.sample(sender, message.receiver)
        self._host.schedule(delay, self._transmit, message)
        return True

    def send_many(self, messages: List[Message]) -> int:
        """Send a same-sender burst; returns how many the limiter accepted.

        The real backend has no unobserved batch fast path — each datagram
        runs the full :meth:`send` pipeline so the observer interleaving is
        identical with and without observers.
        """
        if not messages:
            return 0
        sender = messages[0].sender
        for message in messages:
            if message.sender != sender:
                raise ValueError(
                    f"send_many requires a single sender, got {message.sender!r} "
                    f"after {sender!r}"
                )
        accepted = 0
        for message in messages:
            if self.send(message):
                accepted += 1
        return accepted

    def _transmit(self, message: Message) -> None:
        """Put one datagram on the wire at its virtual delivery instant."""
        sender = self._endpoints.get(message.sender)
        receiver = self._endpoints.get(message.receiver)
        if sender is None or sender.transport is None or receiver is None:
            return
        sender.transport.sendto(encode_message(message), receiver.address)
        self.datagrams_sent += 1

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_datagram(self, receiver_id: NodeId, data: bytes) -> None:
        message = decode_message(data)
        self.datagrams_received += 1
        endpoint = self._endpoints.get(receiver_id)
        if endpoint is None or not endpoint.alive:
            if self._observers is not None:
                for observer in self._observers:
                    observer.on_delivery_dropped(message, self._host.now)
            return
        self.stats.record_received(receiver_id, message.kind, message.size_bytes)
        if self._observers is not None:
            # Same ordering contract as the simulated transport: observers
            # fire before the handler, so reactions observe their cause.
            for observer in self._observers:
                observer.on_delivered(message, self._host.now)
        endpoint.handler(message)


__all__ = ["UdpNetwork"]
