"""Exception types of the real-network backend."""

from __future__ import annotations


class RealNetError(RuntimeError):
    """Base class for real-network backend failures."""


class RealNetStateError(RealNetError):
    """An operation was attempted in the wrong host lifecycle phase."""


class CodecError(RealNetError):
    """A datagram could not be encoded to or decoded from the wire."""


__all__ = ["CodecError", "RealNetError", "RealNetStateError"]
