"""The wall-clock host: asyncio timers behind the simulator's interface.

:class:`AsyncioHost` implements the :class:`~repro.core.host.Host` surface
— ``now`` / ``rng`` / ``schedule`` / ``schedule_at`` / ``cancel`` plus the
observer and accounting extras the telemetry layer reads — on top of a real
asyncio event loop, so :class:`~repro.core.node.GossipNode`, the timers,
the stream emitter and the churn injector run on it *unchanged*.

Time model
----------
The host exposes a **virtual time axis** measured in the same seconds the
simulator uses.  One virtual second costs ``time_scale`` wall seconds
(default 1.0 = real time); ``now`` maps the loop clock back onto the
virtual axis, and every ``schedule(delay)`` converts the virtual delay to a
wall delay.  Delivery logs and traces therefore record virtual times that
are directly comparable with a simulated run of the same scenario — the
sim-vs-real comparison (:mod:`repro.realnet.compare`) depends on exactly
this property.

Lifecycle
---------
Sessions are *built* before the event loop exists: node construction arms
gossip timers and the emitter schedules every publication.  The host
buffers those pre-start schedules and converts them into ``loop.call_at``
timers the moment :meth:`run` starts the loop (virtual ``t = 0`` is defined
as that instant).  ``run(until=...)`` then sleeps until the virtual horizon
is reached, awaits the registered shutdown hooks (closing UDP transports),
and cancels whatever is still pending.

Handles
-------
``schedule`` returns a :class:`WallClockHandle` rather than the raw
``asyncio.TimerHandle``: callers of the shared timer helpers read
``handle.cancelled`` as an *attribute* (the simulator's
``EventHandle.cancelled`` is a property) while asyncio's ``cancelled()`` is
a method — the wrapper bridges that, and also survives the buffered
pre-start phase where no loop handle exists yet.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Optional, Set

from repro.simulation.rng import RngRegistry

from repro.realnet.errors import RealNetStateError

EventCallback = Callable[..., None]
LifecycleHook = Callable[[], Awaitable[None]]


class WallClockHandle:
    """A cancellable reference to one callback scheduled on the host.

    Satisfies the :class:`~repro.core.host.ScheduledHandle` contract:
    ``cancel()`` is idempotent and ``cancelled`` is a property.
    """

    __slots__ = ("virtual_time", "callback", "args", "_host", "_timer", "_cancelled", "_fired")

    def __init__(
        self, host: "AsyncioHost", virtual_time: float, callback: EventCallback, args: tuple
    ) -> None:
        self.virtual_time = virtual_time
        self.callback = callback
        self.args = args
        self._host = host
        self._timer: Optional[asyncio.TimerHandle] = None
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the callback has already run."""
        return self._fired

    def cancel(self) -> None:
        """Cancel the scheduled callback (idempotent, also pre-start)."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._host._forget(self)


class AsyncioHost:
    """Wall-clock implementation of the :class:`~repro.core.host.Host` surface.

    Parameters
    ----------
    seed:
        Root seed of the RNG registry — the same named-stream derivation as
        the simulator's, so per-node draws are reproducible across backends.
    time_scale:
        Wall seconds per virtual second.  ``1.0`` runs in real time;
        ``0.5`` runs the same virtual schedule twice as fast.  Scales well
        below ~0.1 squeeze the 200 ms gossip period under the OS timer
        resolution and distort the physics — keep smoke runs at 0.25+.
    """

    def __init__(self, seed: int = 0, time_scale: float = 1.0) -> None:
        if time_scale <= 0.0:
            raise ValueError(f"time_scale must be positive, got {time_scale!r}")
        self._rng = RngRegistry(seed)
        self._time_scale = float(time_scale)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._started = False
        self._stopped = False
        self._final_now = 0.0
        # Monotonic floor on the virtual clock: asyncio may fire a timer up
        # to one clock resolution *early*, so a raw wall reading inside a
        # callback could land below the callback's scheduled time and break
        # time monotonicity (which validation observers and the trace
        # toolchain check).  Dispatching an event advances the floor to its
        # scheduled time, exactly like the simulator's clock.advance_to.
        self._clock_floor = 0.0
        self._events_processed = 0
        self._pending: Set[WallClockHandle] = set()
        self._observers: Optional[List[Any]] = None
        self._startup_hooks: List[LifecycleHook] = []
        self._shutdown_hooks: List[LifecycleHook] = []

    # ------------------------------------------------------------------
    # Host surface: time and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds (0.0 before the loop starts)."""
        if not self._started:
            return 0.0
        if self._stopped:
            return self._final_now
        assert self._loop is not None
        wall = (self._loop.time() - self._t0) / self._time_scale
        floor = self._clock_floor
        return wall if wall > floor else floor

    @property
    def rng(self) -> RngRegistry:
        """Registry of named deterministic random streams."""
        return self._rng

    @property
    def time_scale(self) -> float:
        """Wall seconds per virtual second."""
        return self._time_scale

    @property
    def events_processed(self) -> int:
        """Total number of scheduled callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled callbacks that have not yet fired."""
        return len(self._pending)

    @property
    def backend_name(self) -> str:
        """Identifies this host in trace headers and session results."""
        return "realnet-asyncio"

    @property
    def loop(self) -> Optional[asyncio.AbstractEventLoop]:
        """The running event loop (``None`` outside :meth:`run`)."""
        return self._loop

    # ------------------------------------------------------------------
    # Host surface: scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: EventCallback, *args: Any) -> WallClockHandle:
        """Run ``callback(*args)`` ``delay`` virtual seconds from :attr:`now`."""
        if delay < 0.0:
            raise ValueError(f"cannot schedule with negative delay {delay!r}")
        return self._schedule_virtual(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: EventCallback, *args: Any) -> WallClockHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``.

        Unlike the simulator — where time only advances between events — a
        wall clock may already have passed ``time`` by a few microseconds
        when the caller computed it; such callbacks fire as soon as
        possible instead of raising.
        """
        return self._schedule_virtual(max(time, self.now), callback, args)

    def schedule_fire_and_forget(self, delay: float, callback: EventCallback, *args: Any) -> None:
        """Like :meth:`schedule` but discards the handle (simulator parity)."""
        self.schedule(delay, callback, *args)

    def schedule_fire_and_forget_at(self, time: float, callback: EventCallback, *args: Any) -> None:
        """Like :meth:`schedule_at` but discards the handle."""
        self.schedule_at(time, callback, *args)

    def cancel(self, handle: Optional[WallClockHandle]) -> None:
        """Cancel a previously scheduled callback; ``None`` is ignored."""
        if handle is not None:
            handle.cancel()

    def _schedule_virtual(
        self, virtual_time: float, callback: EventCallback, args: tuple
    ) -> WallClockHandle:
        handle = WallClockHandle(self, virtual_time, callback, args)
        if self._stopped:
            # The horizon has passed: accept and immediately retire the
            # handle so teardown-time protocol code cannot resurrect timers.
            handle._cancelled = True
            return handle
        self._pending.add(handle)
        if self._started:
            self._activate(handle)
        return handle

    def _activate(self, handle: WallClockHandle) -> None:
        assert self._loop is not None
        wall_deadline = self._t0 + handle.virtual_time * self._time_scale
        handle._timer = self._loop.call_at(wall_deadline, self._dispatch, handle)

    def _forget(self, handle: WallClockHandle) -> None:
        self._pending.discard(handle)

    def _dispatch(self, handle: WallClockHandle) -> None:
        if handle._cancelled or self._stopped:
            return
        handle._fired = True
        handle._timer = None
        self._pending.discard(handle)
        self._events_processed += 1
        if handle.virtual_time > self._clock_floor:
            self._clock_floor = handle.virtual_time
        if self._observers is not None:
            # Stamp with ``now`` *after* advancing the floor: every stamp in
            # the system (dispatch edges here, network edges via host.now) is
            # then max(wall, floor) at stamping time, which is monotone even
            # when asyncio dispatches racing timers out of scheduled order or
            # a datagram arrives ahead of a lagging timer.
            stamp = self.now
            for observer in self._observers:
                observer.on_event_dispatch(stamp, handle.callback, handle.args)
        handle.callback(*handle.args)

    # ------------------------------------------------------------------
    # Observation (same edge as the simulator's dispatch loop)
    # ------------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Register a dispatch observer (``on_event_dispatch(time, cb, args)``).

        The ``time`` passed to observers is :attr:`now` read after advancing
        the monotonic clock floor to the callback's scheduled virtual time —
        stamps never regress even when asyncio dispatches racing timers a
        clock resolution apart out of scheduled order.
        """
        if self._observers is None:
            self._observers = []
        self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        """Unregister a dispatch observer."""
        if self._observers is not None:
            self._observers.remove(observer)
            if not self._observers:
                self._observers = None

    # ------------------------------------------------------------------
    # Lifecycle hooks (UDP endpoints open/close inside the loop)
    # ------------------------------------------------------------------
    def add_startup_hook(self, hook: LifecycleHook) -> None:
        """Await ``hook()`` inside the loop before virtual time starts."""
        self._startup_hooks.append(hook)

    def add_shutdown_hook(self, hook: LifecycleHook) -> None:
        """Await ``hook()`` inside the loop after the horizon is reached."""
        self._shutdown_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drive the event loop until virtual time ``until``.

        Mirrors :meth:`repro.simulation.engine.Simulator.run` closely
        enough that :meth:`repro.core.session.StreamingSession.run` calls
        it without knowing which backend it is on.  ``until`` is mandatory:
        a wall-clock host has no "queue drained" notion to substitute for a
        horizon.  Returns the number of callbacks executed.

        Parameters
        ----------
        until:
            Virtual-time horizon at which the run stops.
        max_events:
            Accepted for interface parity; the wall-clock host stops on the
            horizon only.
        """
        if until is None:
            raise RealNetStateError("AsyncioHost.run() requires an explicit until= horizon")
        if self._started:
            raise RealNetStateError("AsyncioHost.run() called twice")
        before = self._events_processed
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(self._main(loop, until))
        finally:
            self._loop = None
            loop.close()
        return self._events_processed - before

    async def _main(self, loop: asyncio.AbstractEventLoop, until: float) -> None:
        self._loop = loop
        for hook in self._startup_hooks:
            await hook()
        self._t0 = loop.time()
        self._started = True
        for handle in list(self._pending):
            self._activate(handle)
        deadline = self._t0 + until * self._time_scale
        await asyncio.sleep(max(0.0, deadline - loop.time()))
        self._stopped = True
        self._final_now = max(until, (loop.time() - self._t0) / self._time_scale)
        for handle in list(self._pending):
            handle.cancel()
        for hook in self._shutdown_hooks:
            await hook()


__all__ = ["AsyncioHost", "WallClockHandle"]
