"""Entry point: ``python -m repro.realnet``."""

import sys

from repro.realnet.cli import main

sys.exit(main())
