"""Race-free UDP port allocation for localhost node fleets.

Each node of a real-network session owns one UDP socket.  Ports are
allocated by *pre-binding* the sockets before the event loop starts:
binding to port 0 lets the kernel pick a free ephemeral port atomically, so
two concurrent sessions on the same machine can never collide — the
classic ``base_port + node_id`` scheme (SNIPPETS Snippet 2) is still
available for runs that need stable, externally known addresses.

The bound sockets are handed to ``loop.create_datagram_endpoint(sock=...)``
unchanged, so the address a node advertises is exactly the one it receives
on.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.network.message import NodeId

Address = Tuple[str, int]


@dataclass(frozen=True)
class PortPlan:
    """How a session maps nodes onto local UDP ports.

    Attributes
    ----------
    bind_host:
        Interface to bind every node socket on (loopback by default).
    base_port:
        ``None`` (the default) lets the kernel assign ephemeral ports;
        an integer binds node ``i`` to ``base_port + i`` explicitly.
    """

    bind_host: str = "127.0.0.1"
    base_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base_port is not None and not 1 <= self.base_port <= 65535:
            raise ValueError(f"base_port must be in 1..65535, got {self.base_port!r}")


def bind_node_socket(plan: PortPlan, node_id: NodeId) -> socket.socket:
    """Create and bind one node's UDP socket according to ``plan``.

    The socket is non-blocking (as ``create_datagram_endpoint`` requires)
    and already bound, so its port is reserved from this moment on.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        port = 0 if plan.base_port is None else plan.base_port + node_id
        sock.bind((plan.bind_host, port))
        sock.setblocking(False)
    except OSError:
        sock.close()
        raise
    return sock


def bind_fleet(plan: PortPlan, node_ids: Sequence[NodeId]) -> Dict[NodeId, socket.socket]:
    """Bind one socket per node, closing everything on partial failure."""
    sockets: Dict[NodeId, socket.socket] = {}
    try:
        for node_id in node_ids:
            sockets[node_id] = bind_node_socket(plan, node_id)
    except OSError:
        for sock in sockets.values():
            sock.close()
        raise
    return sockets


def address_of(sock: socket.socket) -> Address:
    """The ``(host, port)`` a bound socket actually listens on."""
    host, port = sock.getsockname()[:2]
    return (host, port)


__all__ = ["Address", "PortPlan", "address_of", "bind_fleet", "bind_node_socket"]
