"""Sim-vs-real agreement: run one scenario on both backends, diff metrics.

The payoff of the real-network backend is *validation*: if the simulator's
figures are honest, a small-n scenario executed over real UDP sockets must
land on comparable numbers.  :func:`compare_backends` runs the same
:class:`~repro.core.session.SessionConfig` through the simulator and
through :class:`~repro.realnet.session.RealNetSession`, folds both results
into the sweep layer's :class:`~repro.sweep.summary.PointSummary`
(identical extraction code — the comparison can never drift from the
figure pipeline), and reports per-metric deltas.

Expected agreement on localhost
-------------------------------
Delivery ratio is the strong claim: both backends share the limiter, loss
and latency physics, so at small n the ratios agree within a few points —
:data:`DELIVERY_RATIO_TOLERANCE` (|Δ| ≤ 0.10) is the documented gate, with
headroom for wall-clock jitter on loaded CI hosts.  Lag-sensitive metrics
(viewing percentages at tight lags) agree more loosely: real timer
dispatch adds milliseconds of skew per hop that virtual time does not
have.  The report carries every delta so drifts are visible even where no
gate applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.session import SessionConfig, SessionResult, StreamingSession
from repro.metrics.quality import OFFLINE_LAG
from repro.sweep.summary import MetricsRequest, PointSummary, summarize

from repro.realnet.session import RealNetConfig, RealNetSession

DELIVERY_RATIO_TOLERANCE = 0.10
"""Documented localhost gate on ``|sim − real|`` delivery ratio."""


@dataclass(frozen=True)
class MetricDelta:
    """One metric on both backends and their difference."""

    name: str
    sim: float
    real: float

    @property
    def delta(self) -> float:
        """``real − sim`` (positive when the real run scored higher)."""
        return self.real - self.sim

    def within(self, tolerance: float) -> bool:
        """Whether ``|delta|`` is at most ``tolerance``."""
        return abs(self.delta) <= tolerance


@dataclass
class BackendComparison:
    """The full sim-vs-real report of one scenario."""

    config: SessionConfig
    sim: PointSummary
    real: PointSummary
    deltas: List[MetricDelta] = field(default_factory=list)
    tolerance: float = DELIVERY_RATIO_TOLERANCE

    def metric(self, name: str) -> MetricDelta:
        """One delta by metric name (raises ``KeyError`` when absent)."""
        for delta in self.deltas:
            if delta.name == name:
                return delta
        raise KeyError(f"comparison has no metric {name!r}")

    @property
    def delivery_delta(self) -> MetricDelta:
        """The gated metric: delivery ratio on both backends."""
        return self.metric("delivery_ratio")

    def passed(self) -> bool:
        """Whether the delivery-ratio delta is within the tolerance."""
        return self.delivery_delta.within(self.tolerance)

    def to_json_dict(self) -> Dict[str, object]:
        """A plain-JSON rendering of the report (for CI artifacts)."""
        return {
            "num_nodes": self.config.num_nodes,
            "seed": self.config.seed,
            "protocol": self.config.protocol,
            "tolerance": self.tolerance,
            "passed": self.passed(),
            "metrics": [
                {"name": d.name, "sim": d.sim, "real": d.real, "delta": d.delta}
                for d in self.deltas
            ],
        }

    def format_text(self) -> str:
        """A fixed-width table of every metric, sim vs real."""
        lines = [
            f"sim-vs-real: {self.config.num_nodes} nodes, seed {self.config.seed}, "
            f"protocol {self.config.protocol}",
            f"{'metric':<28} {'sim':>10} {'real':>10} {'delta':>10}",
        ]
        for d in self.deltas:
            lines.append(f"{d.name:<28} {d.sim:>10.4f} {d.real:>10.4f} {d.delta:>+10.4f}")
        verdict = "PASS" if self.passed() else "FAIL"
        lines.append(
            f"delivery-ratio gate: |{self.delivery_delta.delta:+.4f}| "
            f"<= {self.tolerance} -> {verdict}"
        )
        return "\n".join(lines)


def _comparison_request() -> MetricsRequest:
    """Metrics both summaries extract (no per-node usage: n is small)."""
    return MetricsRequest(
        viewing_lags=(5.0, 10.0, OFFLINE_LAG),
        window_lags=(10.0,),
        lag_cdf_grid=(),
        include_usage=True,
    )


def _deltas(sim: PointSummary, real: PointSummary) -> List[MetricDelta]:
    deltas = [MetricDelta("delivery_ratio", sim.delivery_ratio, real.delivery_ratio)]
    for (lag, sim_value), (_, real_value) in zip(sim.viewing, real.viewing):
        label = "inf" if lag == OFFLINE_LAG else f"{lag:g}s"
        deltas.append(MetricDelta(f"viewing_pct@{label}", sim_value, real_value))
    for (lag, sim_value), (_, real_value) in zip(sim.complete_windows, real.complete_windows):
        deltas.append(MetricDelta(f"complete_windows_pct@{lag:g}s", sim_value, real_value))
    sim_usage = sum(sim.sorted_usage_kbps) / len(sim.sorted_usage_kbps) if sim.sorted_usage_kbps else 0.0
    real_usage = (
        sum(real.sorted_usage_kbps) / len(real.sorted_usage_kbps) if real.sorted_usage_kbps else 0.0
    )
    deltas.append(MetricDelta("mean_upload_kbps", sim_usage, real_usage))
    return deltas


def compare_backends(
    config: SessionConfig,
    realnet: Optional[RealNetConfig] = None,
    tolerance: float = DELIVERY_RATIO_TOLERANCE,
) -> BackendComparison:
    """Run ``config`` on the simulator and on real UDP, report the deltas.

    Parameters
    ----------
    config:
        The scenario to run on both backends (``shards`` must be ``None``).
    realnet:
        Real-backend knobs (time scale, ports).
    tolerance:
        Gate on the delivery-ratio delta; defaults to the documented
        :data:`DELIVERY_RATIO_TOLERANCE`.
    """
    sim_result, real_result = run_both(config, realnet)
    request = _comparison_request()
    sim_summary = summarize(sim_result, request, cell_id="sim", seed=config.seed)
    real_summary = summarize(real_result, request, cell_id="real", seed=config.seed)
    return BackendComparison(
        config=config,
        sim=sim_summary,
        real=real_summary,
        deltas=_deltas(sim_summary, real_summary),
        tolerance=tolerance,
    )


def run_both(
    config: SessionConfig, realnet: Optional[RealNetConfig] = None
) -> Tuple[SessionResult, SessionResult]:
    """The raw results of one config on (simulator, real backend)."""
    sim_result = StreamingSession(config).run()
    real_result = RealNetSession(config, realnet).run()
    return sim_result, real_result


__all__ = [
    "BackendComparison",
    "DELIVERY_RATIO_TOLERANCE",
    "MetricDelta",
    "compare_backends",
    "run_both",
]
