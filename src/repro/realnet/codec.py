"""Binary datagram codec for the real-network backend.

Every :class:`~repro.network.message.Message` crossing a real UDP socket is
encoded with :func:`encode_message` and rebuilt with :func:`decode_message`.
The format is deliberately boring — fixed-width struct fields, no pickling
(a UDP socket is an untrusted input even on localhost) — and *size-honest*:
the wire datagram is padded with zeros up to the message's modeled
``size_bytes``, so the bytes the kernel actually moves match the bytes the
upload limiter charged.

Layout (network byte order)::

    magic   2s   b"RN"
    version B    1
    ptag    B    payload tag (see below)
    sender  I
    receiver I
    size    I    modeled size_bytes (also the padded datagram length)
    klen    B    length of the kind tag
    kind    {klen}s
    ...payload fields, then zero padding up to ``size``

Payload encodings by tag:

===  ====================  ==============================================
tag  payload type          fields
===  ====================  ==============================================
0    ``None``              —
1    ``ProposePayload``    count ``H``, then count × packet id ``I``
2    ``RequestPayload``    count ``H``, then count × packet id ``I``
3    ``ServePayload``      packet id ``I``, size ``I``, flag ``B``
                           (+ length-prefixed raw bytes when flag is 1)
4    ``FeedMePayload``     requester ``I``
===  ====================  ==============================================

A message whose encoding is *larger* than its modeled size (tiny modeled
sizes with huge id lists — not produced by the shipped protocols) is sent
unpadded at its real length; the receiver trusts the declared field
lengths, never the datagram length.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.core.messages import (
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServePayload,
    ServedPacket,
)
from repro.network.message import Message

from repro.realnet.errors import CodecError

MAGIC = b"RN"
VERSION = 1

_HEADER = struct.Struct("!2sBBIIIB")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_SERVE = struct.Struct("!IIB")

_TAG_NONE = 0
_TAG_PROPOSE = 1
_TAG_REQUEST = 2
_TAG_SERVE = 3
_TAG_FEED_ME = 4

MAX_DATAGRAM_BYTES = 65507
"""Hard IPv4 UDP payload ceiling; encodings beyond this cannot be sent."""


def encode_message(message: Message) -> bytes:
    """Encode one message to its wire datagram (padded to ``size_bytes``)."""
    kind = message.kind.encode("utf-8")
    if len(kind) > 255:
        raise CodecError(f"kind tag too long to encode: {message.kind!r}")
    payload = message.payload
    if payload is None:
        tag, body = _TAG_NONE, b""
    elif isinstance(payload, ProposePayload):
        tag, body = _TAG_PROPOSE, _encode_id_list(payload.packet_ids)
    elif isinstance(payload, RequestPayload):
        tag, body = _TAG_REQUEST, _encode_id_list(payload.packet_ids)
    elif isinstance(payload, ServePayload):
        tag, body = _TAG_SERVE, _encode_serve(payload)
    elif isinstance(payload, FeedMePayload):
        tag, body = _TAG_FEED_ME, _U32.pack(payload.requester)
    else:
        raise CodecError(
            f"cannot encode payload of type {type(payload).__name__}; the realnet "
            f"codec supports the repro.core.messages payload classes only"
        )
    header = _HEADER.pack(
        MAGIC, VERSION, tag, message.sender, message.receiver, message.size_bytes, len(kind)
    )
    wire = header + kind + body
    if len(wire) < message.size_bytes:
        wire = wire + b"\x00" * (message.size_bytes - len(wire))
    if len(wire) > MAX_DATAGRAM_BYTES:
        raise CodecError(
            f"encoded datagram is {len(wire)} bytes, above the UDP ceiling "
            f"of {MAX_DATAGRAM_BYTES}"
        )
    return wire


def decode_message(data: bytes) -> Message:
    """Decode one wire datagram back into a :class:`Message`."""
    if len(data) < _HEADER.size:
        raise CodecError(f"datagram of {len(data)} bytes is shorter than the header")
    magic, version, tag, sender, receiver, size_bytes, klen = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != VERSION:
        raise CodecError(f"unsupported wire version {version}")
    offset = _HEADER.size
    kind_bytes, offset = _take(data, offset, klen)
    kind = kind_bytes.decode("utf-8")
    try:
        if tag == _TAG_NONE:
            payload: object = None
        elif tag in (_TAG_PROPOSE, _TAG_REQUEST):
            ids, offset = _decode_id_list(data, offset)
            payload = ProposePayload(ids) if tag == _TAG_PROPOSE else RequestPayload(ids)
        elif tag == _TAG_SERVE:
            payload, offset = _decode_serve(data, offset)
        elif tag == _TAG_FEED_ME:
            (requester,), offset = _unpack(_U32, data, offset)
            payload = FeedMePayload(requester)
        else:
            raise CodecError(f"unknown payload tag {tag}")
        return Message(
            sender=sender, receiver=receiver, kind=kind, size_bytes=size_bytes, payload=payload
        )
    except ValueError as exc:
        # Field values a crafted datagram can reach (an empty id list, a
        # negative size) fail the payload/message invariants — surface them
        # as codec errors, never raw ValueErrors, to the receive path.
        raise CodecError(f"decoded message is invalid: {exc}") from exc


# ----------------------------------------------------------------------
# Field helpers
# ----------------------------------------------------------------------
def _encode_id_list(packet_ids: Tuple[int, ...]) -> bytes:
    if len(packet_ids) > 0xFFFF:
        raise CodecError(f"id list of {len(packet_ids)} entries exceeds the u16 count")
    return _U16.pack(len(packet_ids)) + b"".join(_U32.pack(pid) for pid in packet_ids)


def _encode_serve(payload: ServePayload) -> bytes:
    packet = payload.packet
    raw = packet.payload
    body = _SERVE.pack(packet.packet_id, packet.size_bytes, 0 if raw is None else 1)
    if raw is not None:
        body += _U32.pack(len(raw)) + raw
    return body


def _decode_id_list(data: bytes, offset: int) -> Tuple[Tuple[int, ...], int]:
    (count,), offset = _unpack(_U16, data, offset)
    ids = []
    for _ in range(count):
        (pid,), offset = _unpack(_U32, data, offset)
        ids.append(pid)
    return tuple(ids), offset


def _decode_serve(data: bytes, offset: int) -> Tuple[ServePayload, int]:
    (packet_id, size_bytes, flag), offset = _unpack(_SERVE, data, offset)
    raw = None
    if flag:
        (length,), offset = _unpack(_U32, data, offset)
        raw, offset = _take(data, offset, length)
    packet = ServedPacket(packet_id=packet_id, size_bytes=size_bytes, payload=raw)
    return ServePayload(packet=packet), offset


def _unpack(fmt: struct.Struct, data: bytes, offset: int):
    if offset + fmt.size > len(data):
        raise CodecError("datagram truncated mid-field")
    return fmt.unpack_from(data, offset), offset + fmt.size


def _take(data: bytes, offset: int, length: int) -> Tuple[bytes, int]:
    if offset + length > len(data):
        raise CodecError("datagram truncated mid-field")
    return data[offset : offset + length], offset + length


__all__ = ["MAX_DATAGRAM_BYTES", "decode_message", "encode_message"]
