"""Real-network sessions: the scalar session wiring on asyncio UDP.

:class:`RealNetSession` subclasses
:class:`~repro.core.session.StreamingSession` and swaps exactly two build
steps — the execution host and the transport.  Everything else (membership
directory, node construction, the stream emitter, churn and join
injectors, telemetry attachment, the result assembly) is *inherited
verbatim*: the point of the :class:`~repro.core.host.Host` refactor is
that a :class:`~repro.core.node.GossipNode` cannot tell which backend it
is running on.

A run produces a genuine :class:`~repro.core.session.SessionResult` — the
delivery log, traffic stats, node stats and quality analyzers are the same
classes the simulator fills — which is what makes the sim-vs-real
comparison (:mod:`repro.realnet.compare`) a pure data question.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.core.session import SessionConfig, SessionResult, StreamingSession

from repro.realnet.host import AsyncioHost
from repro.realnet.net import UdpNetwork
from repro.realnet.ports import PortPlan


@dataclass(frozen=True)
class RealNetConfig:
    """Knobs specific to the real-network backend.

    Attributes
    ----------
    time_scale:
        Wall seconds per virtual second (see
        :class:`~repro.realnet.host.AsyncioHost`).  1.0 is real time.
    bind_host:
        Interface the node sockets bind on; loopback by default.
    base_port:
        ``None`` for kernel-assigned ports (safe for concurrent runs), or
        an explicit base so node ``i`` listens on ``base_port + i``.
    """

    time_scale: float = 1.0
    bind_host: str = "127.0.0.1"
    base_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time_scale <= 0.0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale!r}")

    def port_plan(self) -> PortPlan:
        """The port allocation policy these knobs describe."""
        return PortPlan(bind_host=self.bind_host, base_port=self.base_port)


class RealNetSession(StreamingSession):
    """One streaming session executed over real asyncio UDP sockets.

    Parameters
    ----------
    config:
        The same :class:`~repro.core.session.SessionConfig` a simulated
        session takes.  ``shards`` must be ``None`` — sharding partitions a
        virtual event queue, which this backend does not have.
    realnet:
        Backend knobs; defaults to real time on kernel-assigned loopback
        ports.
    """

    def __init__(self, config: SessionConfig, realnet: Optional[RealNetConfig] = None) -> None:
        if config.shards is not None:
            raise ValueError(
                "realnet sessions cannot be sharded; set SessionConfig.shards=None"
            )
        super().__init__(config)
        self.realnet = realnet if realnet is not None else RealNetConfig()

    def _create_simulator(self) -> AsyncioHost:
        """The wall-clock host every substrate schedules on."""
        return AsyncioHost(seed=self.config.seed, time_scale=self.realnet.time_scale)

    def _build_network(self) -> None:
        """Build the UDP transport with per-sender substrate randomness.

        Per-sender RNG streams make each node's loss/latency draws a
        function of (seed, sender) alone — real-time interleaving of sends
        across nodes cannot perturb anybody's draw sequence, which keeps
        repeated realnet runs statistically aligned with each other and
        with the sharded simulator's draw discipline.
        """
        assert self.simulator is not None
        config = self.config
        node_ids = list(range(config.num_nodes))
        latency = config.network.build_latency(
            self.simulator.rng, node_ids, per_sender=True
        )
        loss = config.network.build_loss(self.simulator.rng, per_sender=True)
        self.network = UdpNetwork(
            self.simulator, latency_model=latency, loss_model=loss,
            plan=self.realnet.port_plan(),
        )


def run_realnet_session(
    config: SessionConfig, realnet: Optional[RealNetConfig] = None
) -> SessionResult:
    """Build and run one real-network session to completion."""
    return RealNetSession(config, realnet).run()


# ----------------------------------------------------------------------
# Run identity and artifacts (the Snippet-2 harness shape)
# ----------------------------------------------------------------------
def make_run_id(seed: int, now: Optional[_datetime.datetime] = None) -> str:
    """A sortable, human-readable id for one real-network run.

    UTC timestamp plus the seed — two runs launched in the same second
    with different seeds still get distinct directories.
    """
    stamp = now if now is not None else _datetime.datetime.now(_datetime.timezone.utc)
    return stamp.strftime("%Y%m%dT%H%M%SZ") + f"-s{seed}"


def write_delivery_log(result: SessionResult, path: str) -> int:
    """Write a session's delivery log as one JSONL record per delivery.

    The schema — ``{"node": id, "packet": id, "t": virtual_seconds}`` in
    ``(t, node, packet)`` order — is backend-independent: a simulated and a
    real run of the same scenario produce files that differ only in their
    values, never their shape.  Returns the number of records written.
    """
    records = [
        (time, node_id, packet_id)
        for node_id, packets in result.deliveries.raw().items()
        for packet_id, time in packets.items()
    ]
    records.sort()
    with open(path, "w", encoding="utf-8") as fh:
        for time, node_id, packet_id in records:
            fh.write(json.dumps({"node": node_id, "packet": packet_id, "t": time}) + "\n")
    return len(records)


def write_run_summary(result: SessionResult, path: str, run_id: str) -> None:
    """Write the headline metrics of one run as a small JSON document."""
    summary = {
        "run_id": run_id,
        "backend": "realnet-asyncio",
        "num_nodes": result.config.num_nodes,
        "seed": result.config.seed,
        "protocol": result.config.protocol,
        "delivery_ratio": result.delivery_ratio(),
        "viewing_pct_10s": result.viewing_percentage(lag=10.0),
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "failed_nodes": list(result.failed_nodes),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")


def prepare_run_dir(root: str, run_id: str) -> str:
    """Create (and return) the artifact directory of one run."""
    run_dir = os.path.join(root, run_id)
    os.makedirs(run_dir, exist_ok=True)
    return run_dir


__all__ = [
    "RealNetConfig",
    "RealNetSession",
    "make_run_id",
    "prepare_run_dir",
    "run_realnet_session",
    "write_delivery_log",
    "write_run_summary",
]
