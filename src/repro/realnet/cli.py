"""Command line for real-network sessions: ``python -m repro.realnet``.

Two subcommands:

``run``
    Execute one registered scenario over real asyncio UDP sockets on
    localhost and (optionally) write the run's artifacts — delivery log,
    summary JSON, telemetry trace — into a per-run directory.  The
    ``--assert-delivery-ratio`` gate makes this directly usable as a CI
    smoke job::

        python -m repro.realnet run --scenario homogeneous --nodes 10 \\
            --time-scale 0.25 --run-dir out/realnet --trace \\
            --assert-delivery-ratio 0.9

``compare``
    Run the same scenario on the simulator *and* the real backend, print
    the per-metric delta table, and exit non-zero when the delivery-ratio
    delta exceeds the tolerance (see :mod:`repro.realnet.compare`)::

        python -m repro.realnet compare --scenario homogeneous --nodes 12

Scenario specs are resolved through the same registry as every other CLI;
``shards`` is forced to ``None`` because the real backend has no virtual
event queue to partition.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.scenarios.builder import SessionBuilder
from repro.scenarios.registry import available_scenarios, build_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.config import TelemetryConfig

from repro.realnet.compare import DELIVERY_RATIO_TOLERANCE, compare_backends
from repro.realnet.session import (
    RealNetConfig,
    RealNetSession,
    make_run_id,
    prepare_run_dir,
    write_delivery_log,
    write_run_summary,
)


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be >= 1."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {parsed}")
    return parsed


def _positive_float(value: str) -> float:
    """Argparse type for strictly positive floats (time scale, tolerance)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if parsed <= 0.0:
        raise argparse.ArgumentTypeError(f"must be positive, got {parsed}")
    return parsed


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    """The scenario-shape flags shared by ``run`` and ``compare``."""
    parser.add_argument(
        "--scenario",
        default="homogeneous",
        help=(
            "registered scenario name (default: homogeneous; one of: "
            f"{', '.join(available_scenarios())})"
        ),
    )
    parser.add_argument(
        "--nodes", type=_positive_int, default=None, help="override the node count"
    )
    parser.add_argument("--seed", type=int, default=None, help="override the root seed")
    parser.add_argument(
        "--windows",
        type=_positive_int,
        default=None,
        help="override the stream length in FEC windows",
    )
    parser.add_argument(
        "--extra-time",
        type=_positive_float,
        default=None,
        help="override the post-stream drain time (virtual seconds)",
    )
    parser.add_argument(
        "--time-scale",
        type=_positive_float,
        default=1.0,
        help=(
            "wall seconds per virtual second (default 1.0 = real time; "
            "0.25 runs 4x fast — below ~0.1 OS timer resolution distorts "
            "the physics)"
        ),
    )
    parser.add_argument(
        "--base-port",
        type=_positive_int,
        default=None,
        help="bind node i on base-port + i (default: kernel-assigned ports)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.realnet",
        description="Run a registered scenario over real asyncio UDP sockets.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario on the real backend")
    _add_scenario_arguments(run)
    run.add_argument(
        "--run-dir",
        default=None,
        help="artifact root; a per-run subdirectory is created inside it",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="record a repro.telemetry/1 trace (requires --run-dir)",
    )
    run.add_argument(
        "--assert-delivery-ratio",
        type=_positive_float,
        default=None,
        metavar="RATIO",
        help="exit 1 unless the delivery ratio reaches RATIO (CI gate)",
    )

    compare = sub.add_parser(
        "compare", help="run sim and real back to back, diff the metrics"
    )
    _add_scenario_arguments(compare)
    compare.add_argument(
        "--tolerance",
        type=_positive_float,
        default=DELIVERY_RATIO_TOLERANCE,
        help=(
            "gate on |sim - real| delivery ratio "
            f"(default {DELIVERY_RATIO_TOLERANCE})"
        ),
    )
    compare.add_argument(
        "--json", action="store_true", help="emit the report as JSON instead of a table"
    )
    return parser


def _build_spec(args: argparse.Namespace) -> ScenarioSpec:
    """The scenario spec with CLI overrides applied and sharding disabled."""
    overrides = {"shards": None}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.extra_time is not None:
        overrides["extra_time"] = args.extra_time
    spec = build_scenario(args.scenario, **overrides)
    if args.windows is not None:
        spec = spec.with_overrides(
            stream=replace(spec.stream, num_windows=args.windows)
        )
    return spec


def _realnet_config(args: argparse.Namespace) -> RealNetConfig:
    return RealNetConfig(time_scale=args.time_scale, base_port=args.base_port)


def _run(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    if args.trace and args.run_dir is None:
        raise SystemExit("--trace requires --run-dir (the trace is a run artifact)")

    run_dir: Optional[str] = None
    if args.run_dir is not None:
        run_id = make_run_id(spec.seed)
        run_dir = prepare_run_dir(args.run_dir, run_id)
        if args.trace:
            trace_path = os.path.join(run_dir, "trace.jsonl")
            telemetry = spec.telemetry if spec.telemetry is not None else TelemetryConfig()
            spec = spec.with_overrides(telemetry=replace(telemetry, trace_path=trace_path))

    config = SessionBuilder.from_spec(spec).to_config()
    print(
        f"scenario={spec.name} nodes={config.num_nodes} seed={config.seed} "
        f"protocol={config.protocol} time_scale={args.time_scale} "
        f"horizon={config.stream.duration + config.extra_time:.1f}s(virtual)"
    )

    started = time.perf_counter()
    result = RealNetSession(config, _realnet_config(args)).run()
    wall = time.perf_counter() - started

    ratio = result.delivery_ratio()
    print(
        f"delivery={ratio * 100:.2f}% "
        f"viewing(10s)={result.viewing_percentage(lag=10.0):.2f}% "
        f"events={result.events_processed} wall={wall:.2f}s"
    )

    if run_dir is not None:
        records = write_delivery_log(result, os.path.join(run_dir, "delivery.jsonl"))
        write_run_summary(result, os.path.join(run_dir, "summary.json"), run_id)
        print(f"artifacts: {run_dir} ({records} delivery records)")

    if args.assert_delivery_ratio is not None and ratio < args.assert_delivery_ratio:
        print(
            f"DELIVERY GATE FAILED: {ratio:.4f} < {args.assert_delivery_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


def _compare(args: argparse.Namespace) -> int:
    spec = _build_spec(args)
    config = SessionBuilder.from_spec(spec).to_config()
    report = compare_backends(
        config, realnet=_realnet_config(args), tolerance=args.tolerance
    )
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.passed() else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.realnet``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run(args)
    if args.command == "compare":
        return _compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
