"""Real-network execution backend: asyncio UDP sockets on localhost.

This package runs the *same* protocol, scenario and telemetry stack as the
discrete-event simulator over actual UDP datagrams — task-per-node, real
ports, wall-clock timers mapped onto the simulator's virtual time axis.
The pieces:

* :class:`~repro.realnet.host.AsyncioHost` — the wall-clock
  :class:`~repro.core.host.Host` implementation;
* :class:`~repro.realnet.net.UdpNetwork` — real sockets behind the
  simulated transport's interface, with the same observer edges;
* :class:`~repro.realnet.session.RealNetSession` — the streaming session
  on the real backend, returning an ordinary
  :class:`~repro.core.session.SessionResult`;
* :mod:`~repro.realnet.compare` — the sim-vs-real agreement report;
* ``python -m repro.realnet run|compare`` — the CLI.

See ``docs/realnet.md`` for the Host contract, the validation workflow and
the wall-clock caveats.
"""

from repro.realnet.compare import BackendComparison, MetricDelta, compare_backends
from repro.realnet.errors import CodecError, RealNetError, RealNetStateError
from repro.realnet.host import AsyncioHost, WallClockHandle
from repro.realnet.net import UdpNetwork
from repro.realnet.ports import PortPlan
from repro.realnet.session import (
    RealNetConfig,
    RealNetSession,
    make_run_id,
    run_realnet_session,
    write_delivery_log,
)

__all__ = [
    "AsyncioHost",
    "BackendComparison",
    "CodecError",
    "MetricDelta",
    "PortPlan",
    "RealNetConfig",
    "RealNetError",
    "RealNetSession",
    "RealNetStateError",
    "UdpNetwork",
    "WallClockHandle",
    "compare_backends",
    "make_run_id",
    "run_realnet_session",
    "write_delivery_log",
]
