"""The dissemination-protocol strategy interface.

A :class:`~repro.core.node.GossipNode` is a *host*: it owns the per-node
machinery that every dissemination protocol needs — timers, partner
selection, protocol state, counters, and network I/O — but delegates every
*decision* (what to send on a gossip round, how to react to a datagram, what
to do when the source publishes a packet) to a :class:`DisseminationProtocol`
strategy bound to it.

The split keeps the paper's determinism guarantees in one place: the host
draws all randomness (partner sampling, round phases) in a fixed order, so
two strategies run over identical partner/timing sequences and differ only
in the messages they emit.  It also means a new protocol is a single small
class, not a fork of the node engine.

Strategies interact with their host through the :class:`ProtocolHost`
protocol below, which is exactly the public surface :class:`GossipNode`
exposes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, List, Protocol, runtime_checkable

from repro.network.message import Message, NodeId
from repro.streaming.packets import PacketDescriptor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import GossipConfig
    from repro.core.node import NodeStats
    from repro.core.state import NodeState
    from repro.membership.partners import PartnerSelector
    from repro.simulation.engine import Simulator
    from repro.streaming.schedule import StreamSchedule


@runtime_checkable
class ProtocolHost(Protocol):
    """What a strategy may use of its node (implemented by ``GossipNode``)."""

    node_id: NodeId
    is_source: bool
    config: "GossipConfig"
    state: "NodeState"
    stats: "NodeStats"

    @property
    def alive(self) -> bool: ...

    @property
    def simulator(self) -> "Simulator": ...

    @property
    def now(self) -> float: ...

    @property
    def schedule(self) -> "StreamSchedule": ...

    @property
    def partners(self) -> "PartnerSelector": ...

    def send(self, receiver: NodeId, kind: str, size_bytes: int, payload: object) -> None: ...

    def deliver(self, packet_id: int, time: float) -> None: ...


class DisseminationProtocol(ABC):
    """Strategy deciding what a node sends and how it reacts to datagrams.

    One instance is bound to exactly one host via :meth:`bind`; strategies
    may keep per-node state on ``self``.

    The host calls the hooks with any randomness already drawn:

    * :meth:`on_publish` — the source published a packet; it has already been
      delivered locally and ``targets`` are the source-fanout recipients;
    * :meth:`on_gossip_round` — one gossip period elapsed; ``partners`` is
      this round's partner set (already refreshed per the ``X`` policy);
    * :meth:`on_feed_me_round` — ``Y`` periods elapsed; ``targets`` are the
      uniformly random feed-me recipients;
    * :meth:`on_message` — a datagram arrived for this node;
    * :meth:`on_fail` — the node crashed (release protocol-owned timers).
    """

    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.host: ProtocolHost = None  # type: ignore[assignment]

    def bind(self, host: ProtocolHost) -> None:
        """Attach the strategy to its node.  Called once, before start."""
        if self.host is not None:
            raise RuntimeError(
                f"protocol {self.name!r} is already bound to node {self.host.node_id}; "
                "use one strategy instance per node"
            )
        self.host = host

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def on_publish(self, descriptor: PacketDescriptor, targets: List[NodeId], now: float) -> None:
        """The source published ``descriptor`` (already delivered locally)."""

    @abstractmethod
    def on_gossip_round(self, now: float, partners: List[NodeId]) -> None:
        """One gossip period elapsed; decide what to send to ``partners``."""

    def on_feed_me_round(self, now: float, targets: List[NodeId]) -> None:
        """``Y`` gossip periods elapsed.  Default: the mechanism is unused."""

    @abstractmethod
    def on_message(self, message: Message) -> None:
        """A datagram arrived.  Dispatch on ``message.kind``."""

    def on_fail(self) -> None:
        """The node crashed.  Default: nothing beyond the host's cleanup."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        bound = f"node {self.host.node_id}" if self.host is not None else "unbound"
        return f"{type(self).__name__}({bound})"
