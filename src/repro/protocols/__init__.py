"""Pluggable dissemination protocols.

The node engine (:class:`repro.core.node.GossipNode`) is a protocol-agnostic
host; everything that makes the paper's system *the paper's system* — the
three-phase propose / request / serve exchange — lives here as one strategy
among several:

* :class:`ThreePhaseGossip` — Algorithm 1, the paper's protocol (default);
* :class:`EagerPush` — one-phase full-payload infect-and-die, the classic
  baseline the paper improves upon.

Protocols are addressed by name through the registry, so configurations stay
declarative::

    from repro import SessionConfig, run_session

    result = run_session(SessionConfig(num_nodes=40, protocol="eager-push"))
"""

from repro.protocols.base import DisseminationProtocol, ProtocolHost
from repro.protocols.eager_push import PUSH, EagerPush
from repro.protocols.registry import (
    available_protocols,
    create_protocol,
    protocol_factory,
    register_protocol,
)
from repro.protocols.three_phase import ThreePhaseGossip

__all__ = [
    "DisseminationProtocol",
    "EagerPush",
    "PUSH",
    "ProtocolHost",
    "ThreePhaseGossip",
    "available_protocols",
    "create_protocol",
    "protocol_factory",
    "register_protocol",
]
