"""The paper's protocol: three-phase propose / request / serve gossip.

This is Algorithm 1 of the paper, extracted verbatim from the original
monolithic node engine:

* **phase 1** — on every gossip round, push the ids delivered since the last
  round (infect-and-die) to the round's partners as a PROPOSE;
* **phase 2** — on receiving a PROPOSE, request every id not yet delivered
  and never requested before; optionally arm a retransmission timer that
  re-requests ids still missing after a timeout, up to ``K`` attempts;
* **phase 3** — on receiving a REQUEST, serve the packets actually held.

The strategy also implements both sides of the ``Y`` proactiveness
mechanism: emitting FEED_ME datagrams every ``Y`` rounds and inserting
requesters into the partner view on receipt.

Moving a node's logic here must not change behaviour: a fixed-seed session
driven through :class:`ThreePhaseGossip` produces a delivery log identical
to the pre-refactor engine (pinned by ``tests/protocols/test_regression.py``).
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from repro.core.messages import (
    FEED_ME,
    PROPOSE,
    REQUEST,
    SERVE,
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServePayload,
    ServedPacket,
)
from repro.core.state import PendingRequest
from repro.network.message import Message, NodeId
from repro.protocols.base import DisseminationProtocol
from repro.simulation.timers import Timer
from repro.streaming.packets import PacketDescriptor, PacketId


class ThreePhaseGossip(DisseminationProtocol):
    """Algorithm 1: propose ids, pull missing packets, serve on request."""

    name = "three-phase"

    # ------------------------------------------------------------------
    # Source role
    # ------------------------------------------------------------------
    def on_publish(self, descriptor: PacketDescriptor, targets: List[NodeId], now: float) -> None:
        host = self.host
        if not targets:
            return
        payload = ProposePayload(packet_ids=(descriptor.packet_id,))
        size = host.config.sizes.propose_size(1)
        host.send_to_all(targets, PROPOSE, size, payload)
        host.stats.proposes_sent += len(targets)

    # ------------------------------------------------------------------
    # Gossip round (phase 1: push ids)
    # ------------------------------------------------------------------
    def on_gossip_round(self, now: float, partners: List[NodeId]) -> None:
        host = self.host
        packet_ids = host.state.drain_proposals()
        if not packet_ids or not partners:
            return
        payload = ProposePayload(packet_ids=tuple(packet_ids))
        size = host.config.sizes.propose_size(len(packet_ids))
        host.send_to_all(partners, PROPOSE, size, payload)
        host.stats.proposes_sent += len(partners)

    # ------------------------------------------------------------------
    # Feed-me round (the Y mechanism, sending side)
    # ------------------------------------------------------------------
    def on_feed_me_round(self, now: float, targets: List[NodeId]) -> None:
        host = self.host
        payload = FeedMePayload(requester=host.node_id)
        size = host.config.sizes.feed_me_size()
        host.send_to_all(targets, FEED_ME, size, payload)
        host.stats.feed_me_sent += len(targets)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == PROPOSE:
            self._handle_propose(message.sender, message.payload)
        elif kind == REQUEST:
            self._handle_request(message.sender, message.payload)
        elif kind == SERVE:
            self._handle_serve(message.sender, message.payload)
        elif kind == FEED_ME:
            self._handle_feed_me(message.payload)
        else:
            raise ValueError(
                f"node {self.host.node_id} received unknown message kind {kind!r}"
            )

    # Phase 2: request missing packets ---------------------------------
    def _handle_propose(self, sender: NodeId, payload: ProposePayload) -> None:
        host = self.host
        host.stats.proposals_received += 1
        state = host.state
        has_delivered = state.has_delivered
        never_requested = state.never_requested
        wanted: List[PacketId] = []
        for packet_id in payload.packet_ids:
            if has_delivered(packet_id):
                continue
            if never_requested(packet_id):
                wanted.append(packet_id)
        if wanted:
            record_request = state.record_request
            for packet_id in wanted:
                record_request(packet_id)
            self._send_request(sender, wanted)

        if host.config.retransmission_enabled:
            self._arm_retransmission(sender, payload.packet_ids)

    def _send_request(self, proposer: NodeId, packet_ids: List[PacketId]) -> None:
        host = self.host
        payload = RequestPayload(packet_ids=tuple(packet_ids))
        size = host.config.sizes.request_size(len(packet_ids))
        host.send(proposer, REQUEST, size, payload)
        host.stats.requests_sent += 1

    def _arm_retransmission(self, proposer: NodeId, packet_ids: Tuple[PacketId, ...]) -> None:
        host = self.host
        missing = host.state.missing_from(packet_ids)
        retryable = [
            packet_id
            for packet_id in missing
            if host.state.may_request_again(packet_id, host.config.max_request_attempts)
        ]
        if not retryable:
            return
        pending = PendingRequest(proposer=proposer, packet_ids=tuple(packet_ids))
        timer = Timer(host.simulator, partial(self._on_retransmit_timeout, pending))
        pending.timer = timer
        timer.arm(host.config.retransmit_timeout)
        host.state.add_pending(pending)

    def _on_retransmit_timeout(self, pending: PendingRequest) -> None:
        host = self.host
        host.state.remove_pending(pending)
        if not host.alive:
            return
        missing = [
            packet_id
            for packet_id in host.state.missing_from(pending.packet_ids)
            if host.state.may_request_again(packet_id, host.config.max_request_attempts)
        ]
        if not missing:
            return
        for packet_id in missing:
            host.state.record_request(packet_id)
        self._send_request(pending.proposer, missing)
        host.stats.retransmission_requests_sent += 1
        # Another retry may still be allowed for some of these packets; keep
        # a timer armed so the node eventually exhausts its K attempts.
        self._arm_retransmission(pending.proposer, pending.packet_ids)

    # Phase 3: serve requested packets ----------------------------------
    def _handle_request(self, sender: NodeId, payload: RequestPayload) -> None:
        host = self.host
        host.stats.requests_received += 1
        has_delivered = host.state.has_delivered
        packet_of = host.schedule.packet
        serve_size = host.config.sizes.serve_size
        burst: List[Tuple[NodeId, str, int, object]] = []
        for packet_id in payload.packet_ids:
            if not has_delivered(packet_id):
                continue
            descriptor = packet_of(packet_id)
            served = ServedPacket(packet_id=packet_id, size_bytes=descriptor.size_bytes)
            size = serve_size(descriptor.size_bytes)
            burst.append((sender, SERVE, size, ServePayload(packet=served)))
        if burst:
            host.send_many(burst)
            host.stats.serves_sent += len(burst)
            host.stats.packets_served += len(burst)

    def _handle_serve(self, sender: NodeId, payload: ServePayload) -> None:
        host = self.host
        packet = payload.packet
        now = host.now
        if host.state.has_delivered(packet.packet_id):
            host.stats.duplicate_serves_received += 1
            return
        host.deliver(packet.packet_id, now)
        host.state.queue_for_proposal(packet.packet_id)

    def _handle_feed_me(self, payload: FeedMePayload) -> None:
        host = self.host
        host.stats.feed_me_received += 1
        host.partners.insert_requester(payload.requester, host.now)
