"""Eager push: the classic one-phase infect-and-die baseline.

Instead of the paper's three-phase id negotiation, an eager-push node sends
the *full packet payload* to every gossip partner the first round after it
learns the packet, then never pushes it again (infect and die).  This is the
textbook gossip dissemination the paper argues against under constrained
bandwidth: there is no request phase, so every duplicate costs a whole
packet of upload instead of an 8-byte id, and the narrow good-fanout window
collapses much earlier.

It exists as a comparison baseline for scenario experiments (see the
``eager-push`` scenario in :mod:`repro.scenarios.registry`).  The host
draws partner randomness the same way for every protocol, so two sessions
with equal configs and seeds see identical partner sequences regardless of
strategy; note the shipped scenario raises the upload cap and lowers the
fanout relative to ``homogeneous`` (changing the fanout changes partner
draws), because pure push cannot survive the paper's provisioning.

Counter conventions: pushes are accounted as serves (``serves_sent`` /
``packets_served``), duplicates as ``duplicate_serves_received``, so the
conformance invariants of the metrics layer apply unchanged.
"""

from __future__ import annotations

from typing import List

from repro.core.messages import ServePayload, ServedPacket
from repro.network.message import Message, NodeId
from repro.protocols.base import DisseminationProtocol
from repro.streaming.packets import PacketDescriptor, PacketId

PUSH = "push"
"""Message kind tag for eager full-payload pushes."""


class EagerPush(DisseminationProtocol):
    """One-phase gossip: push full packets, infect-and-die."""

    name = "eager-push"

    # ------------------------------------------------------------------
    # Source role
    # ------------------------------------------------------------------
    def on_publish(self, descriptor: PacketDescriptor, targets: List[NodeId], now: float) -> None:
        if not targets:
            return
        self._push(descriptor.packet_id, targets)

    # ------------------------------------------------------------------
    # Gossip round: push everything learned since the last round
    # ------------------------------------------------------------------
    def on_gossip_round(self, now: float, partners: List[NodeId]) -> None:
        packet_ids = self.host.state.drain_proposals()
        if not packet_ids or not partners:
            return
        for packet_id in packet_ids:
            self._push(packet_id, partners)

    def _push(self, packet_id: PacketId, targets: List[NodeId]) -> None:
        host = self.host
        descriptor = host.schedule.packet(packet_id)
        served = ServedPacket(packet_id=packet_id, size_bytes=descriptor.size_bytes)
        payload = ServePayload(packet=served)
        size = host.config.sizes.serve_size(descriptor.size_bytes)
        host.send_to_all(targets, PUSH, size, payload)
        host.stats.serves_sent += len(targets)
        host.stats.packets_served += len(targets)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if message.kind != PUSH:
            raise ValueError(
                f"node {self.host.node_id} received unknown message kind {message.kind!r}"
            )
        host = self.host
        packet = message.payload.packet
        if host.state.has_delivered(packet.packet_id):
            host.stats.duplicate_serves_received += 1
            return
        host.deliver(packet.packet_id, host.now)
        host.state.queue_for_proposal(packet.packet_id)
