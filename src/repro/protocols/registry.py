"""Name-based registry of dissemination protocols.

Sessions and scenarios refer to protocols declaratively by name (e.g.
``SessionConfig(protocol="three-phase")``), which this registry resolves to a
factory producing one fresh strategy instance per node.  Extensions register
their own protocols with :func:`register_protocol`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.protocols.base import DisseminationProtocol
from repro.protocols.eager_push import EagerPush
from repro.protocols.three_phase import ThreePhaseGossip

ProtocolFactory = Callable[[], DisseminationProtocol]

_PROTOCOLS: Dict[str, ProtocolFactory] = {}


def register_protocol(name: str, factory: ProtocolFactory, replace: bool = False) -> None:
    """Register a protocol factory under ``name``.

    ``factory`` is called once per node, so each node gets an independent
    strategy instance.  Re-registering an existing name raises unless
    ``replace=True``.
    """
    if not name:
        raise ValueError("protocol name must be non-empty")
    if name in _PROTOCOLS and not replace:
        raise ValueError(f"protocol {name!r} is already registered")
    _PROTOCOLS[name] = factory


def protocol_factory(name: str) -> ProtocolFactory:
    """Look up the factory for ``name``."""
    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None


def create_protocol(name: str) -> DisseminationProtocol:
    """Instantiate one fresh, unbound strategy for ``name``."""
    return protocol_factory(name)()


def available_protocols() -> List[str]:
    """Sorted names of all registered protocols."""
    return sorted(_PROTOCOLS)


register_protocol(ThreePhaseGossip.name, ThreePhaseGossip)
register_protocol(EagerPush.name, EagerPush)
