"""Cross-figure caching of point summaries.

:class:`SummaryCache` is what the figure generators consume: it memoizes
:class:`~repro.sweep.summary.PointSummary` records by experiment point, runs
points serially on a miss, and can be *primed* with the results of a
parallel sweep so that figure generation afterwards touches no simulation at
all.  It replaces the old ``experiments.runner.shared_cache`` (which held
full in-memory session results and died with the process).

:class:`RecordingCache` is the planning half of the same interface: calling
a figure generator against it records exactly which points the figure needs
— without running anything — which is how the CLI builds the task list it
hands to the parallel executor.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.experiments.runner import ExperimentPoint
from repro.experiments.scale import ExperimentScale

from repro.sweep.spec import SweepTask
from repro.sweep.summary import MetricsRequest, PointSummary


class SummaryCache:
    """Memoizes point summaries; the figure generators' result provider."""

    def __init__(self) -> None:
        self._summaries: Dict[ExperimentPoint, PointSummary] = {}
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of simulations actually run (or primed entries created)."""
        return self._misses

    def __len__(self) -> int:
        return len(self._summaries)

    def get(self, scale: ExperimentScale, point: ExperimentPoint) -> PointSummary:
        """The summary for ``point``, running its session serially if needed."""
        if point.scale_name != scale.name:
            raise ValueError(
                f"point was built for scale {point.scale_name!r}, not {scale.name!r}"
            )
        cached = self._summaries.get(point)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        summary = self._compute(scale, point)
        self._summaries[point] = summary
        return summary

    def _compute(self, scale: ExperimentScale, point: ExperimentPoint) -> PointSummary:
        # Imported here: executor imports experiments modules that in turn
        # import this module at package-init time.
        from repro.sweep.executor import compute_summary

        return compute_summary(scale, SweepTask(point=point), MetricsRequest.for_scale(scale))

    def prime(self, results: Mapping[SweepTask, PointSummary]) -> int:
        """Install sweep results (patch-free tasks only) as cache entries.

        Returns the number of entries installed.  Patched tasks are skipped:
        their results do not correspond to any plain experiment point.
        """
        installed = 0
        for task, summary in results.items():
            if task.patch:
                continue
            self._summaries[task.point] = summary
            installed += 1
        return installed

    def clear(self) -> None:
        """Drop all cached summaries."""
        self._summaries.clear()


class _PlanningSummary(PointSummary):
    """A summary stand-in whose every metric is zero (plan collection only)."""

    def viewing_percentage(self, lag: float) -> float:
        return 0.0

    def average_complete_windows_percentage(self, lag: float) -> float:
        return 0.0

    def lag_cdf_values(self, lag_grid) -> List[float]:
        return [0.0 for _ in lag_grid]

    def sorted_usage(self, descending: bool = True) -> List[float]:
        return []


class RecordingCache(SummaryCache):
    """Records requested points instead of running them.

    Running a figure generator against a recording cache is a dry run: the
    generator's control flow executes (so the recorded plan is exactly its
    real request sequence, deduplicated) but every metric reads as zero and
    no simulation happens.
    """

    def __init__(self) -> None:
        super().__init__()
        self._points: List[ExperimentPoint] = []
        self._seen = set()

    def _compute(self, scale: ExperimentScale, point: ExperimentPoint) -> PointSummary:
        if point not in self._seen:
            self._seen.add(point)
            self._points.append(point)
        return _PlanningSummary(cell_id=SweepTask(point=point).cell_id, seed=scale.seed + point.seed_offset)

    def points(self) -> List[ExperimentPoint]:
        """The recorded points, in first-request order, deduplicated."""
        return list(self._points)

    def tasks(self) -> List[SweepTask]:
        """The recorded points as patch-free sweep tasks."""
        return [SweepTask(point=point) for point in self._points]


shared_summary_cache = SummaryCache()
"""Process-wide cache shared by all figure generators by default."""
