"""Compact, picklable summaries of one experiment point.

The parallel executor ships :class:`~repro.core.session.SessionResult`
analysis to the *workers*: each worker runs its session, extracts the
figure-facing metrics into a :class:`PointSummary`, and only that small
record crosses the process boundary (a full session result holds every
delivery of every packet at every node — hundreds of thousands of floats).

Which metrics are extracted is declared up front by a
:class:`MetricsRequest` (derived from the experiment scale), because the
worker cannot know which playout lags or CDF grids the figures will ask
for after the fact.

Summaries also serialize to and from plain JSON dictionaries, which is what
the :class:`~repro.sweep.store.ResultStore` appends to its JSONL file.
Infinite lags ("offline viewing") are encoded as the string ``"inf"`` so the
records remain standard JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence, Tuple

from repro.core.session import SessionResult
from repro.metrics.quality import OFFLINE_LAG

LagValues = Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class MetricsRequest:
    """Which metrics a worker must extract from its session result.

    Attributes
    ----------
    viewing_lags:
        Playout lags at which the viewing percentage is evaluated
        (Figures 1, 3, 5, 6, 7).
    window_lags:
        Lags at which the average complete-window percentage is evaluated
        (Figure 8).
    lag_cdf_grid:
        The critical-lag CDF grid (Figure 2).
    include_usage:
        Whether to extract the sorted per-node upload usage (Figure 4).
    include_metrics:
        Whether to run the point with the telemetry metrics registry armed
        and persist its snapshot into the summary (counter/gauge values per
        rendered metric name).  Off by default: metrics add rows to every
        store record and most sweeps only need the figure-facing numbers.
    """

    viewing_lags: Tuple[float, ...] = (10.0, 20.0, OFFLINE_LAG)
    window_lags: Tuple[float, ...] = (20.0,)
    lag_cdf_grid: Tuple[float, ...] = ()
    include_usage: bool = True
    include_metrics: bool = False

    @classmethod
    def for_scale(cls, scale) -> "MetricsRequest":
        """Everything the eight figure generators need at ``scale``."""
        lags = sorted(set(scale.lag_values) | {10.0, 20.0, OFFLINE_LAG})
        return cls(
            viewing_lags=tuple(lags),
            window_lags=(20.0,),
            lag_cdf_grid=tuple(scale.fig2_lag_grid),
            include_usage=True,
        )


@dataclass(frozen=True)
class PointSummary:
    """The figure-facing metrics of one completed experiment point.

    ``wall_seconds`` is excluded from equality: two runs of the same point
    are *the same result* regardless of how long they took, which is what
    lets determinism tests compare serial and parallel sweeps directly.
    """

    cell_id: str
    seed: int
    viewing: LagValues = ()
    complete_windows: LagValues = ()
    lag_cdf: LagValues = ()
    sorted_usage_kbps: Tuple[float, ...] = ()
    delivery_ratio: float = 0.0
    num_receivers: int = 0
    num_survivors: int = 0
    num_failed: int = 0
    events_processed: int = 0
    end_time: float = 0.0
    metrics: Tuple[Tuple[str, float], ...] = ()
    wall_seconds: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------------
    # Figure-facing accessors (mirroring SessionResult's headline API)
    # ------------------------------------------------------------------
    def viewing_percentage(self, lag: float) -> float:
        """Percentage of nodes viewing with < 1 % jitter at ``lag``."""
        for recorded_lag, value in self.viewing:
            if recorded_lag == lag:
                return value
        raise KeyError(f"summary of {self.cell_id!r} has no viewing lag {lag!r}")

    def average_complete_windows_percentage(self, lag: float) -> float:
        """Average percentage of decodable windows at ``lag`` (Figure 8)."""
        for recorded_lag, value in self.complete_windows:
            if recorded_lag == lag:
                return value
        raise KeyError(f"summary of {self.cell_id!r} has no window lag {lag!r}")

    def lag_cdf_values(self, lag_grid: Sequence[float]) -> List[float]:
        """Cumulative node fractions for ``lag_grid`` (Figure 2)."""
        recorded = dict(self.lag_cdf)
        missing = [lag for lag in lag_grid if lag not in recorded]
        if missing:
            raise KeyError(f"summary of {self.cell_id!r} has no CDF lags {missing!r}")
        return [recorded[lag] for lag in lag_grid]

    def sorted_usage(self, descending: bool = True) -> List[float]:
        """Per-node upload usage in kbps, sorted by contribution (Figure 4)."""
        usage = list(self.sorted_usage_kbps)
        return usage if descending else usage[::-1]

    @property
    def delivery_percentage(self) -> float:
        """Percentage of (survivor, packet) pairs delivered."""
        return self.delivery_ratio * 100.0

    # ------------------------------------------------------------------
    # JSON round-trip (ResultStore records)
    # ------------------------------------------------------------------
    def metric(self, name: str) -> float:
        """The value of one persisted telemetry metric by rendered name."""
        for recorded_name, value in self.metrics:
            if recorded_name == name:
                return value
        raise KeyError(f"summary of {self.cell_id!r} has no metric {name!r}")

    def to_json_dict(self) -> Dict[str, object]:
        """A standard-JSON-safe dictionary (``inf`` encoded as a string).

        The ``metrics`` key appears only when a snapshot was captured:
        store records written before the telemetry layer existed — and the
        golden files pinning them — stay byte-identical.
        """
        record: Dict[str, object] = {
            "cell_id": self.cell_id,
            "seed": self.seed,
            "viewing": [[_dump_float(lag), value] for lag, value in self.viewing],
            "complete_windows": [
                [_dump_float(lag), value] for lag, value in self.complete_windows
            ],
            "lag_cdf": [[_dump_float(lag), value] for lag, value in self.lag_cdf],
            "sorted_usage_kbps": list(self.sorted_usage_kbps),
            "delivery_ratio": self.delivery_ratio,
            "num_receivers": self.num_receivers,
            "num_survivors": self.num_survivors,
            "num_failed": self.num_failed,
            "events_processed": self.events_processed,
            "end_time": self.end_time,
            "wall_seconds": self.wall_seconds,
        }
        if self.metrics:
            record["metrics"] = [[name, value] for name, value in self.metrics]
        return record

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "PointSummary":
        """Rebuild a summary from :meth:`to_json_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown summary fields: {sorted(unknown)}")
        return cls(
            cell_id=str(data["cell_id"]),
            seed=int(data["seed"]),
            viewing=_load_pairs(data.get("viewing", ())),
            complete_windows=_load_pairs(data.get("complete_windows", ())),
            lag_cdf=_load_pairs(data.get("lag_cdf", ())),
            sorted_usage_kbps=tuple(float(v) for v in data.get("sorted_usage_kbps", ())),
            delivery_ratio=float(data.get("delivery_ratio", 0.0)),
            num_receivers=int(data.get("num_receivers", 0)),
            num_survivors=int(data.get("num_survivors", 0)),
            num_failed=int(data.get("num_failed", 0)),
            events_processed=int(data.get("events_processed", 0)),
            end_time=float(data.get("end_time", 0.0)),
            metrics=tuple(
                (str(name), float(value)) for name, value in data.get("metrics", ())
            ),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


def _dump_float(value: float) -> object:
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _load_float(value: object) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)  # type: ignore[arg-type]


def _load_pairs(pairs) -> LagValues:
    return tuple((_load_float(lag), float(value)) for lag, value in pairs)


def summarize(
    result: SessionResult,
    request: MetricsRequest,
    cell_id: str,
    seed: int,
    wall_seconds: float = 0.0,
) -> PointSummary:
    """Extract the requested metrics from a full session result.

    This is the worker-side boundary of the parallel executor: everything
    after this call is small and picklable.
    """
    quality = result.quality()
    viewing = tuple(
        (lag, ratio * 100.0)
        for lag, ratio in quality.viewing_ratio_curve(request.viewing_lags)
    )
    complete = tuple(
        (lag, ratio * 100.0)
        for lag, ratio in quality.complete_window_curve(request.window_lags)
    )
    lag_cdf: LagValues = ()
    if request.lag_cdf_grid:
        fractions = quality.lag_cdf(request.lag_cdf_grid)
        lag_cdf = tuple(zip(request.lag_cdf_grid, fractions))
    usage: Tuple[float, ...] = ()
    if request.include_usage:
        usage = tuple(result.bandwidth_usage().sorted_usage(descending=True))
    metrics: Tuple[Tuple[str, float], ...] = ()
    if request.include_metrics and result.telemetry is not None:
        snapshot = result.telemetry.metrics
        metrics = tuple(sorted(snapshot.items()))
    return PointSummary(
        cell_id=cell_id,
        seed=seed,
        viewing=viewing,
        complete_windows=complete,
        lag_cdf=lag_cdf,
        sorted_usage_kbps=usage,
        delivery_ratio=result.delivery_ratio(),
        num_receivers=len(result.receivers()),
        num_survivors=len(result.survivors()),
        num_failed=len(result.failed_nodes),
        events_processed=result.events_processed,
        end_time=result.end_time,
        metrics=metrics,
        wall_seconds=wall_seconds,
    )
