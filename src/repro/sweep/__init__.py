"""Parallel sweep orchestration.

The layer between scenarios and experiments: declarative parameter grids
(:class:`SweepSpec` / :class:`SweepGrid`) expand into :class:`SweepTask`
lists with stable cell ids, a serial or multiprocess executor runs them
(:class:`SerialExecutor` / :class:`ParallelExecutor`, shipping only compact
:class:`PointSummary` records between processes), a persistent JSONL
:class:`ResultStore` makes interrupted sweeps resumable, and
:func:`aggregate` reduces seed replicas to mean/stdev/CI tables.

Because every session derives its randomness from named, seed-keyed streams
(:mod:`repro.simulation.rng`), a parallel sweep is bit-identical to the
serial one for the same seeds.

Typical use::

    from repro.sweep import SweepSpec, SweepGrid, run_sweep, make_executor

    spec = SweepSpec(
        name="fanout-sweep",
        scale_name="smoke",
        grid=SweepGrid(fanouts=(4, 7, 10, 15)),
        replicas=3,
    )
    outcome = run_sweep(scale, spec.expand(), executor=make_executor(jobs=4))
    print(aggregate_table(aggregate(outcome.results)))
"""

from repro.sweep.aggregate import (
    CellAggregate,
    Stat,
    aggregate,
    aggregate_table,
    stat_of,
    t_quantile_975,
)
from repro.sweep.cache import RecordingCache, SummaryCache, shared_summary_cache
from repro.sweep.executor import (
    ParallelExecutor,
    SerialExecutor,
    SweepOutcome,
    apply_patch,
    compute_summary,
    make_executor,
    run_sweep,
    run_task,
)
from repro.sweep.spec import ConfigPatch, SweepGrid, SweepSpec, SweepTask, dedupe_tasks
from repro.sweep.store import (
    ResultStore,
    clear_fingerprint_cache,
    code_fingerprint,
    run_fingerprint,
    scale_fingerprint,
)
from repro.sweep.summary import MetricsRequest, PointSummary, summarize

__all__ = [
    "CellAggregate",
    "ConfigPatch",
    "MetricsRequest",
    "ParallelExecutor",
    "PointSummary",
    "RecordingCache",
    "ResultStore",
    "SerialExecutor",
    "Stat",
    "SummaryCache",
    "SweepGrid",
    "SweepOutcome",
    "SweepSpec",
    "SweepTask",
    "aggregate",
    "aggregate_table",
    "apply_patch",
    "clear_fingerprint_cache",
    "code_fingerprint",
    "compute_summary",
    "dedupe_tasks",
    "make_executor",
    "run_fingerprint",
    "run_sweep",
    "run_task",
    "scale_fingerprint",
    "shared_summary_cache",
    "stat_of",
    "summarize",
    "t_quantile_975",
]
