"""Declarative sweep specifications.

A *sweep* is the unit of work behind every figure of the paper: a
cross-product over protocol knobs (fanout, upload cap, X, Y, churn fraction,
protocol), replicated over seeds.  This module turns such grids into concrete
:class:`SweepTask` lists:

* :class:`SweepGrid` — the axes of the cross-product; every axis defaults to
  a single "use the scale's default" value, so a grid only names what it
  varies;
* :class:`SweepSpec` — a named grid bound to a scale, plus seed replicas;
* :class:`SweepTask` — one executable cell × replica: an
  :class:`~repro.experiments.runner.ExperimentPoint` plus an optional
  *config patch* (dotted-path overrides applied to the built
  :class:`~repro.core.session.SessionConfig`, which is how the ablations
  reach knobs the point does not model, e.g. ``gossip.source_fanout``).

Every task has a **stable cell id**: a canonical string over all sweep axes
*except* the seed, so replicas of the same cell share an id.  Cell ids key
the :class:`~repro.sweep.store.ResultStore`, which is what makes interrupted
sweeps resumable across processes.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.experiments.runner import ExperimentPoint, format_rate
from repro.membership.partners import INFINITE

ConfigPatch = Tuple[Tuple[str, object], ...]
"""Dotted-path config overrides, e.g. ``(("gossip.source_fanout", 3),)``."""


def _canonical(value: object) -> str:
    """Canonical, version-stable rendering of one cell-id component."""
    if value is None:
        return "default"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float) and value == INFINITE:
        return "inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class SweepTask:
    """One executable cell × seed replica of a sweep."""

    point: ExperimentPoint
    patch: ConfigPatch = ()

    @property
    def cell_id(self) -> str:
        """Stable id of the task's cell (identical across seed replicas).

        Every axis is always present (``default`` when unset) so ids stay
        stable if a knob's default ever changes.
        """
        point = self.point
        parts = [
            f"scale={point.scale_name}",
            f"protocol={point.protocol}",
            f"fanout={_canonical(point.fanout)}",
            f"cap={_canonical(point.cap_kbps)}",
            f"X={format_rate(point.refresh_every)}",
            f"Y={format_rate(point.feed_me_every)}",
            f"churn={_canonical(point.churn_fraction)}",
        ]
        if self.patch:
            overrides = ",".join(
                f"{path}={_canonical(value)}" for path, value in sorted(self.patch)
            )
            parts.append(f"patch[{overrides}]")
        return "|".join(parts)

    @property
    def replica(self) -> int:
        """The seed replica index (the point's seed offset)."""
        return self.point.seed_offset

    def describe(self) -> str:
        """Human-readable one-liner (cell id plus replica)."""
        if self.replica:
            return f"{self.cell_id} (seed+{self.replica})"
        return self.cell_id


@dataclass(frozen=True)
class SweepGrid:
    """The axes of a sweep's cross-product.

    Each axis is a tuple of values; axes left at their one-element defaults
    do not multiply the grid.  ``None`` in ``fanouts`` / ``caps_kbps`` means
    "the scale's default".
    """

    fanouts: Tuple[Optional[int], ...] = (None,)
    caps_kbps: Tuple[Optional[float], ...] = (None,)
    refresh_values: Tuple[float, ...] = (1,)
    feedme_values: Tuple[float, ...] = (INFINITE,)
    churn_fractions: Tuple[float, ...] = (0.0,)
    protocols: Tuple[str, ...] = ("three-phase",)

    def __post_init__(self) -> None:
        for name in (
            "fanouts",
            "caps_kbps",
            "refresh_values",
            "feedme_values",
            "churn_fractions",
            "protocols",
        ):
            if not getattr(self, name):
                raise ValueError(f"grid axis {name!r} must have at least one value")

    def __len__(self) -> int:
        return (
            len(self.fanouts)
            * len(self.caps_kbps)
            * len(self.refresh_values)
            * len(self.feedme_values)
            * len(self.churn_fractions)
            * len(self.protocols)
        )

    def cells(self, scale_name: str) -> Iterator[ExperimentPoint]:
        """All cells of the grid as experiment points, in deterministic order."""
        for protocol, fanout, cap, refresh, feedme, churn in itertools.product(
            self.protocols,
            self.fanouts,
            self.caps_kbps,
            self.refresh_values,
            self.feedme_values,
            self.churn_fractions,
        ):
            yield ExperimentPoint(
                scale_name=scale_name,
                fanout=fanout,
                cap_kbps=cap,
                refresh_every=refresh,
                feed_me_every=feedme,
                churn_fraction=churn,
                protocol=protocol,
            )


@dataclass(frozen=True)
class SweepSpec:
    """A named, declarative sweep: a grid at a scale, replicated over seeds.

    ``replicas`` seed copies of every cell are expanded, with seed offsets
    ``base_seed_offset .. base_seed_offset + replicas - 1`` (the session seed
    is the scale's base seed plus the offset).
    """

    name: str
    scale_name: str
    grid: SweepGrid = field(default_factory=SweepGrid)
    replicas: int = 1
    base_seed_offset: int = 0
    patch: ConfigPatch = ()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas!r}")

    def __len__(self) -> int:
        return len(self.grid) * self.replicas

    def expand(self) -> List[SweepTask]:
        """All tasks of the sweep: every grid cell × every seed replica."""
        tasks: List[SweepTask] = []
        for point in self.grid.cells(self.scale_name):
            for replica in range(self.replicas):
                replicated = dataclasses.replace(
                    point, seed_offset=self.base_seed_offset + replica
                )
                tasks.append(SweepTask(point=replicated, patch=self.patch))
        return tasks


def dedupe_tasks(tasks: List[SweepTask]) -> List[SweepTask]:
    """Drop duplicate tasks, preserving first-seen order."""
    seen = set()
    unique: List[SweepTask] = []
    for task in tasks:
        if task in seen:
            continue
        seen.add(task)
        unique.append(task)
    return unique
