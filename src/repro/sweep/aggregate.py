"""Aggregating seed replicas into per-cell statistics and tables.

A sweep with ``replicas > 1`` produces several summaries per cell (same
parameters, different seeds).  This module reduces them to per-cell
:class:`CellAggregate` rows — mean, sample standard deviation and a 95 %
confidence half-width per metric — and renders the rows as an aligned text
table through the same :func:`~repro.metrics.report.format_table` helper the
figures use.

Determinism: cells are ordered by cell id and replicas by seed before any
arithmetic, so the aggregate table of a parallel sweep is byte-identical to
the serial one (floating-point summation order included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.metrics.quality import OFFLINE_LAG
from repro.metrics.report import format_table

from repro.sweep.spec import SweepTask
from repro.sweep.summary import PointSummary


@dataclass(frozen=True)
class Stat:
    """Mean, sample stdev and 95 % CI half-width of one metric's replicas."""

    mean: float
    stdev: float
    ci95: float
    n: int

    def __str__(self) -> str:
        if self.n <= 1:
            return f"{self.mean:.2f}"
        return f"{self.mean:.2f}±{self.ci95:.2f}"


_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
"""Two-sided 95 % Student-t quantiles by degrees of freedom (z beyond 30)."""


def t_quantile_975(degrees_of_freedom: int) -> float:
    """The 97.5 % Student-t quantile (≈ 1.96 for large samples)."""
    if degrees_of_freedom < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {degrees_of_freedom!r}")
    return _T_975.get(degrees_of_freedom, 1.96)


def stat_of(values: Sequence[float]) -> Stat:
    """Aggregate one metric's replica values (deterministic order-sensitive).

    The 95 % CI half-width uses the Student-t quantile for the sample size —
    at the 3-5 replicas sweeps typically use, the normal approximation
    (z = 1.96) would understate the interval by more than half.
    """
    if not values:
        raise ValueError("cannot aggregate an empty value list")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Stat(mean=mean, stdev=0.0, ci95=0.0, n=1)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    stdev = math.sqrt(variance)
    ci95 = t_quantile_975(n - 1) * stdev / math.sqrt(n)
    return Stat(mean=mean, stdev=stdev, ci95=ci95, n=n)


@dataclass(frozen=True)
class CellAggregate:
    """Aggregated metrics of one sweep cell across its seed replicas."""

    cell_id: str
    n: int
    viewing: Tuple[Tuple[float, Stat], ...]
    complete_windows: Tuple[Tuple[float, Stat], ...]
    delivery: Stat

    def viewing_stat(self, lag: float) -> Stat:
        """Aggregated viewing percentage at ``lag``."""
        for recorded_lag, stat in self.viewing:
            if recorded_lag == lag:
                return stat
        raise KeyError(f"cell {self.cell_id!r} has no viewing lag {lag!r}")

    def complete_windows_stat(self, lag: float) -> Stat:
        """Aggregated complete-window percentage at ``lag``."""
        for recorded_lag, stat in self.complete_windows:
            if recorded_lag == lag:
                return stat
        raise KeyError(f"cell {self.cell_id!r} has no window lag {lag!r}")


def aggregate(results: Mapping[SweepTask, PointSummary]) -> List[CellAggregate]:
    """Group results by cell id and aggregate each metric over replicas.

    Cells come out sorted by cell id; within a cell, replicas are sorted by
    seed before summation so the result is independent of completion order.
    """
    by_cell: Dict[str, List[PointSummary]] = {}
    for task, summary in results.items():
        by_cell.setdefault(task.cell_id, []).append(summary)

    aggregates: List[CellAggregate] = []
    for cell_id in sorted(by_cell):
        replicas = sorted(by_cell[cell_id], key=lambda summary: summary.seed)
        viewing_lags = [lag for lag, _ in replicas[0].viewing]
        window_lags = [lag for lag, _ in replicas[0].complete_windows]
        aggregates.append(
            CellAggregate(
                cell_id=cell_id,
                n=len(replicas),
                viewing=tuple(
                    (lag, stat_of([replica.viewing_percentage(lag) for replica in replicas]))
                    for lag in viewing_lags
                ),
                complete_windows=tuple(
                    (
                        lag,
                        stat_of(
                            [
                                replica.average_complete_windows_percentage(lag)
                                for replica in replicas
                            ]
                        ),
                    )
                    for lag in window_lags
                ),
                delivery=stat_of([replica.delivery_percentage for replica in replicas]),
            )
        )
    return aggregates


def _lag_header(lag: float) -> str:
    if math.isinf(lag):
        return "offline"
    return f"{lag:g}s"


def aggregate_table(aggregates: Sequence[CellAggregate]) -> str:
    """Render per-cell aggregates as one aligned text table.

    Columns: cell id, replica count, ``mean±ci95`` viewing percentage per
    lag, complete-window percentages, and the delivery percentage.
    """
    if not aggregates:
        return "(no cells)"
    viewing_lags = [lag for lag, _ in aggregates[0].viewing]
    window_lags = [lag for lag, _ in aggregates[0].complete_windows]
    headers = (
        ["cell", "n"]
        + [f"view@{_lag_header(lag)}" for lag in viewing_lags]
        + [f"windows@{_lag_header(lag)}" for lag in window_lags]
        + ["delivery"]
    )
    rows: List[List[object]] = []
    for cell in aggregates:
        row: List[object] = [cell.cell_id, cell.n]
        row.extend(str(cell.viewing_stat(lag)) for lag in viewing_lags)
        row.extend(str(cell.complete_windows_stat(lag)) for lag in window_lags)
        row.append(str(cell.delivery))
        rows.append(row)
    return format_table(headers, rows)


OFFLINE = OFFLINE_LAG
"""Re-exported for table callers that aggregate the offline-viewing lag."""
