"""Persistent, resumable storage of sweep results.

The :class:`ResultStore` is an append-only JSONL file: one record per
completed (cell, seed) pair, written and flushed the moment the point
finishes.  Because records are self-contained lines, a crashed or killed
sweep leaves at worst one torn trailing line — which :meth:`ResultStore.load`
skips — and rerunning the sweep with ``resume`` executes only the missing
cells.

Records are additionally keyed by a **code fingerprint**: a hash over the
``repro`` package sources.  Results computed by an older version of the
simulation are never silently reused — determinism guarantees only hold
between identical code.

This store subsumes the old in-memory ``experiments.runner.shared_cache`` as
the cross-figure cache: overlapping points of different figures (the
fanout-7 / 700 kbps / X=1 cell appears in Figures 1, 2, 4, 5 and 6) are
shared through it, and survive process exit.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.sweep.summary import PointSummary

RecordKey = Tuple[str, int, str]
"""(cell id, seed, code fingerprint)."""

_FINGERPRINT_CACHE: Dict[str, str] = {}


def clear_fingerprint_cache() -> None:
    """Forget the cached code fingerprint (tests that fake sources use this).

    The fingerprint also stamps every ``repro.bench`` report; anything that
    swaps the package sources under a running process (test fixtures, hot
    reloads) must clear the cache or the stamp would lie.
    """
    _FINGERPRINT_CACHE.clear()


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (stable across processes).

    Cached per process; the first call reads the whole package (~100 kB).
    """
    cached = _FINGERPRINT_CACHE.get("repro")
    if cached is not None:
        return cached
    import repro

    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()[:16]
    _FINGERPRINT_CACHE["repro"] = fingerprint
    return fingerprint


def scale_fingerprint(scale) -> str:
    """Hash of a scale's *contents* (not just its name).

    Cell ids only carry the scale's name, and the code fingerprint cannot
    see runtime-constructed :class:`ExperimentScale` objects — so without
    this, a store written with one ``reduced`` could satisfy a resume with a
    differently-sized scale that happens to share the name.  Scales are
    frozen dataclasses of numbers and tuples, so ``repr`` is deterministic.
    """
    digest = hashlib.sha256(repr(scale).encode("utf-8"))
    return digest.hexdigest()[:8]


def run_fingerprint(scale) -> str:
    """The store key fingerprint: code hash + scale-contents hash."""
    return f"{code_fingerprint()}+{scale_fingerprint(scale)}"


class ResultStore:
    """Append-only JSONL store of :class:`PointSummary` records.

    Parameters
    ----------
    path:
        The JSONL file; created (with parents) on first append.  Loading a
        missing file yields an empty store, so ``--store`` works on the
        first run and every run thereafter.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records: Dict[RecordKey, PointSummary] = {}
        self._skipped_lines = 0
        self._loaded = False
        self._tail_is_clean = False

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> None:
        """Read all intact records from disk (torn/corrupt lines are skipped)."""
        self._records.clear()
        self._skipped_lines = 0
        self._loaded = True
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (
                        str(record["cell_id"]),
                        int(record["seed"]),
                        str(record["fingerprint"]),
                    )
                    summary = PointSummary.from_json_dict(record["summary"])
                except (ValueError, KeyError, TypeError):
                    # A torn line from a killed writer, or foreign content;
                    # resuming reruns that point instead of trusting it.
                    self._skipped_lines += 1
                    continue
                self._records[key] = summary

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    @property
    def skipped_lines(self) -> int:
        """Number of unreadable lines dropped by the last :meth:`load`."""
        return self._skipped_lines

    def get(self, cell_id: str, seed: int, fingerprint: str) -> Optional[PointSummary]:
        """The stored summary for the key, or ``None``."""
        self._ensure_loaded()
        return self._records.get((cell_id, seed, fingerprint))

    def records(self) -> Iterator[Tuple[RecordKey, PointSummary]]:
        """All (key, summary) pairs currently loaded."""
        self._ensure_loaded()
        return iter(tuple(self._records.items()))

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self,
        cell_id: str,
        seed: int,
        fingerprint: str,
        summary: PointSummary,
    ) -> None:
        """Durably append one completed point (write + flush per record).

        Appending never parses the existing file: a write-mostly run (no
        ``resume``) stays O(1) per point however large the store has grown.
        """
        record = {
            "cell_id": cell_id,
            "seed": seed,
            "fingerprint": fingerprint,
            "summary": summary.to_json_dict(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        prefix = "\n" if self._tail_needs_newline() else ""
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(prefix + json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
        self._tail_is_clean = True
        if self._loaded:
            self._records[(cell_id, seed, fingerprint)] = summary

    def _tail_needs_newline(self) -> bool:
        """Whether the file ends in a torn (newline-less) line.

        A writer killed mid-``append`` leaves a truncated trailing line;
        gluing the next record onto it would corrupt *both* records, so the
        torn line is terminated first (``load`` then skips it as one corrupt
        line instead of two).  Checked once per store instance — after our
        own first append the tail is known clean, keeping appends O(1).
        """
        if self._tail_is_clean:
            return False
        try:
            with self.path.open("rb") as handle:
                handle.seek(0, 2)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, 2)
                return handle.read(1) != b"\n"
        except FileNotFoundError:
            return False
