"""Executing sweep tasks — serially or on a multiprocess worker pool.

Both executors share one interface: :meth:`map_tasks` takes a scale, a task
list and a :class:`~repro.sweep.summary.MetricsRequest`, and yields
``(task, summary)`` pairs — the serial executor in task order, the parallel
one in **completion order** (so slow tasks never delay the persistence of
fast ones).  Consumers must key on the yielded task, never on position.
The parallel executor ships each task to a ``ProcessPoolExecutor`` worker;
the worker runs the simulation and extracts the summary **worker-side**, so
only compact :class:`~repro.sweep.summary.PointSummary` records cross the
pipe.

Determinism: each task's session derives every random stream from its own
seed through the named-stream registry (:mod:`repro.simulation.rng`), so a
task's result does not depend on which process runs it or in what order —
a ``jobs=4`` sweep is bit-identical to the serial one.

:func:`run_sweep` is the driver used by the CLI and the ablations: it
dedupes tasks, reuses completed cells from a
:class:`~repro.sweep.store.ResultStore` when resuming, executes the rest,
and appends every fresh result to the store as soon as it completes (which
is what makes an interrupted sweep resumable).
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.session import SessionConfig, SessionResult
from repro.experiments.scale import ExperimentScale
from repro.scenarios.builder import SessionBuilder
from repro.telemetry.config import TelemetryConfig

from repro.sweep.spec import ConfigPatch, SweepTask, dedupe_tasks
from repro.sweep.store import ResultStore, run_fingerprint
from repro.sweep.summary import MetricsRequest, PointSummary, summarize

TaskResult = Tuple[SweepTask, PointSummary]


def apply_patch(config: SessionConfig, patch: ConfigPatch) -> SessionConfig:
    """Apply dotted-path overrides to a session config, immutably.

    ``("gossip.source_fanout", 3)`` replaces the nested gossip config;
    ``("failure_detection_delay", 2.0)`` replaces a top-level field.  Only
    one level of nesting exists in :class:`SessionConfig`, so paths have at
    most two components.
    """
    for path, value in patch:
        head, _, rest = path.partition(".")
        if not hasattr(config, head):
            raise ValueError(f"config patch path {path!r} does not exist")
        if rest:
            nested = getattr(config, head)
            if not hasattr(nested, rest):
                raise ValueError(f"config patch path {path!r} does not exist")
            value = dataclasses.replace(nested, **{rest: value})
        config = dataclasses.replace(config, **{head: value})
    return config


def run_task(
    scale: ExperimentScale,
    task: SweepTask,
    telemetry: Optional[TelemetryConfig] = None,
) -> SessionResult:
    """Run one task's full session (point knobs, then the config patch).

    ``telemetry`` arms the session's telemetry layer for this run; it is
    applied after the patch so a sweep-wide metrics request cannot be
    silently overridden by a per-task patch.
    """
    point = task.point
    if point.scale_name != scale.name:
        raise ValueError(
            f"task was built for scale {point.scale_name!r}, not {scale.name!r}"
        )
    config = scale.session_config(
        fanout=point.fanout,
        cap_kbps=point.cap_kbps,
        refresh_every=point.refresh_every,
        feed_me_every=point.feed_me_every,
        churn_fraction=point.churn_fraction,
        seed_offset=point.seed_offset,
        protocol=point.protocol,
    )
    if task.patch:
        config = apply_patch(config, task.patch)
    if telemetry is not None:
        config = dataclasses.replace(config, telemetry=telemetry)
    return SessionBuilder.from_config(config).run()


def compute_summary(
    scale: ExperimentScale,
    task: SweepTask,
    request: MetricsRequest,
) -> PointSummary:
    """Run one task and reduce it to its summary (the unit of worker work)."""
    started = time.perf_counter()
    telemetry = TelemetryConfig(metrics=True) if request.include_metrics else None
    result = run_task(scale, task, telemetry=telemetry)
    return summarize(
        result,
        request,
        cell_id=task.cell_id,
        seed=scale.seed + task.point.seed_offset,
        wall_seconds=time.perf_counter() - started,
    )


def _worker(args: Tuple[ExperimentScale, SweepTask, MetricsRequest]) -> TaskResult:
    scale, task, request = args
    return task, compute_summary(scale, task, request)


class SerialExecutor:
    """Runs every task in the calling process, one after another."""

    jobs = 1

    def map_tasks(
        self,
        scale: ExperimentScale,
        tasks: Sequence[SweepTask],
        request: MetricsRequest,
    ) -> Iterator[TaskResult]:
        """Yield ``(task, summary)`` for each task, in order."""
        for task in tasks:
            yield task, compute_summary(scale, task, request)


class ParallelExecutor:
    """Runs tasks on a :class:`ProcessPoolExecutor` of ``jobs`` workers.

    Results are yielded in **completion order**, so a slow task never delays
    the persistence of faster ones — killing a sweep loses only the points
    actually in flight.  Each result carries its task, and every consumer
    keys on the task (result stores, caches, aggregation), so completion
    order does not affect any output.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def map_tasks(
        self,
        scale: ExperimentScale,
        tasks: Sequence[SweepTask],
        request: MetricsRequest,
    ) -> Iterator[TaskResult]:
        """Yield ``(task, summary)`` for each task, as they complete."""
        if not tasks:
            return
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(_worker, (scale, task, request)) for task in tasks]
            for future in as_completed(futures):
                yield future.result()


def make_executor(jobs: int):
    """``jobs == 1`` → :class:`SerialExecutor`; else a pool of ``jobs``."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)


@dataclass
class SweepOutcome:
    """What a sweep run did: its results plus execute/reuse accounting."""

    results: Dict[SweepTask, PointSummary]
    executed: int
    reused: int

    def __len__(self) -> int:
        return len(self.results)

    def summaries(self, tasks: Iterable[SweepTask]) -> List[PointSummary]:
        """Summaries for ``tasks``, in the given order."""
        return [self.results[task] for task in tasks]


def run_sweep(
    scale: ExperimentScale,
    tasks: Sequence[SweepTask],
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    request: Optional[MetricsRequest] = None,
    progress: Optional[Callable[[SweepTask, PointSummary], None]] = None,
) -> SweepOutcome:
    """Execute a task list, reusing and persisting through ``store``.

    With ``resume=True`` (requires a store), tasks whose (cell id, seed,
    code fingerprint) already have a stored record are not re-run.  Every
    freshly executed task is appended to the store the moment it completes,
    so killing the process mid-sweep loses at most the in-flight points.
    """
    if resume and store is None:
        raise ValueError("resume=True requires a result store")
    executor = executor if executor is not None else SerialExecutor()
    request = request if request is not None else MetricsRequest.for_scale(scale)
    fingerprint = run_fingerprint(scale)

    unique = dedupe_tasks(list(tasks))
    results: Dict[SweepTask, PointSummary] = {}
    pending: List[SweepTask] = []
    for task in unique:
        seed = scale.seed + task.point.seed_offset
        cached = (
            store.get(task.cell_id, seed, fingerprint)
            if resume and store is not None
            else None
        )
        if cached is not None:
            results[task] = cached
        else:
            pending.append(task)
    reused = len(results)

    for task, summary in executor.map_tasks(scale, pending, request):
        results[task] = summary
        if store is not None:
            store.append(task.cell_id, summary.seed, fingerprint, summary)
        if progress is not None:
            progress(task, summary)

    return SweepOutcome(results=results, executed=len(pending), reused=reused)
