"""Reproduction of "Stretching Gossip with Live Streaming" (Frey et al., DSN 2009).

A gossip-based live streaming system — three-phase propose / request / serve
dissemination with infect-and-die id propagation — running over a simulated
bandwidth-constrained wide-area network, together with the experiment harness
that regenerates every figure of the paper's evaluation.

Top-level convenience imports::

    from repro import (
        GossipConfig, SessionConfig, StreamingSession, run_session,
        StreamConfig, NetworkConfig, CatastrophicChurn, INFINITE,
    )

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured comparison.
"""

from repro.core.config import GossipConfig, MessageSizeModel
from repro.core.node import GossipNode, NodeStats
from repro.core.session import SessionConfig, SessionResult, StreamingSession, run_session
from repro.membership.churn import CatastrophicChurn, NoChurn, StaggeredChurn
from repro.membership.join import FlashCrowdJoin
from repro.membership.partners import INFINITE, recommended_fanout
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.network.bandwidth import BandwidthCap
from repro.network.transport import Network, NetworkConfig
from repro.protocols import (
    DisseminationProtocol,
    EagerPush,
    ThreePhaseGossip,
    available_protocols,
    register_protocol,
)
from repro.scenarios import (
    BandwidthClass,
    ScenarioSpec,
    SessionBuilder,
    available_scenarios,
    register_scenario,
    run_scenario,
)
from repro.simulation.engine import Simulator
from repro.streaming.fec import ReedSolomonCode, WindowCodec
from repro.streaming.schedule import StreamConfig, StreamSchedule
from repro.telemetry.config import TelemetryConfig

__version__ = "1.0.0"

__all__ = [
    "BandwidthCap",
    "BandwidthClass",
    "CatastrophicChurn",
    "DisseminationProtocol",
    "EagerPush",
    "FlashCrowdJoin",
    "GossipConfig",
    "GossipNode",
    "INFINITE",
    "MessageSizeModel",
    "Network",
    "NetworkConfig",
    "NoChurn",
    "NodeStats",
    "OFFLINE_LAG",
    "ReedSolomonCode",
    "ScenarioSpec",
    "SessionBuilder",
    "SessionConfig",
    "SessionResult",
    "Simulator",
    "StaggeredChurn",
    "StreamConfig",
    "StreamQualityAnalyzer",
    "StreamSchedule",
    "StreamingSession",
    "TelemetryConfig",
    "ThreePhaseGossip",
    "WindowCodec",
    "available_protocols",
    "available_scenarios",
    "recommended_fanout",
    "register_protocol",
    "register_scenario",
    "run_scenario",
    "run_session",
    "__version__",
]
