"""Full-membership directory with delayed failure detection.

The gossip protocol of the paper assumes each node can pick uniformly random
partners "in the set of all nodes" (Algorithm 1, line 26).  In the PlanetLab
deployment this knowledge is provided by a membership service; crucially,
when nodes crash, the rest of the system does not learn about it instantly —
dead nodes keep being selected for a short while, wasting fanout, which is
why survivors see a few seconds of degraded quality around a churn event
before the protocol recovers.

:class:`MembershipDirectory` models exactly that: a registry of node ids, a
failure timestamp per crashed node, and a ``detection_delay`` after which a
crashed node stops being returned by :meth:`selectable`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.network.message import NodeId


class MembershipDirectory:
    """Registry of all nodes with delayed failure visibility.

    Parameters
    ----------
    detection_delay:
        Seconds after a node's failure before other nodes stop selecting it.
        ``float("inf")`` models a system with no failure detection at all
        (dead nodes are selected forever); ``0`` models an oracle detector.
    """

    def __init__(self, detection_delay: float = 5.0) -> None:
        if detection_delay < 0.0:
            raise ValueError(f"detection_delay must be >= 0, got {detection_delay!r}")
        self._detection_delay = float(detection_delay)
        self._members: List[NodeId] = []
        self._member_set: set[NodeId] = set()
        self._failed_at: Dict[NodeId, float] = {}
        # ``selectable`` cache.  Every node's partner selector calls
        # ``selectable`` every gossip round, and the naive scan is O(members)
        # — O(n²) work per round across the system, the dominant cost at
        # 1,000 nodes.  The selectable set only changes when membership
        # mutates (version bump) or when a crashed node crosses its
        # detection deadline (the cache records the earliest such deadline),
        # so between those instants the scan result is reused and per-node
        # exclusion becomes two C-level list slices.
        self._version = 0
        self._cache_version = -1
        self._cache_now = 0.0
        self._cache_deadline = 0.0  # cache valid for now in [_cache_now, _cache_deadline)
        self._cache_base: List[NodeId] = []
        self._cache_index: Dict[NodeId, int] = {}

    @property
    def detection_delay(self) -> float:
        """Seconds between a node's crash and its system-wide undetectability."""
        return self._detection_delay

    @detection_delay.setter
    def detection_delay(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"detection_delay must be >= 0, got {value!r}")
        self._detection_delay = float(value)
        self._version += 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node_id: NodeId) -> None:
        """Register a node.  Adding an existing member is an error."""
        if node_id in self._member_set:
            raise ValueError(f"node {node_id} is already a member")
        self._members.append(node_id)
        self._member_set.add(node_id)
        self._version += 1

    def add_all(self, node_ids: Iterable[NodeId]) -> None:
        """Register several nodes at once."""
        for node_id in node_ids:
            self.add(node_id)

    def mark_failed(self, node_id: NodeId, time: float) -> None:
        """Record that ``node_id`` crashed at simulated ``time``."""
        if node_id not in self._member_set:
            raise KeyError(f"node {node_id} is not a member")
        self._failed_at.setdefault(node_id, time)
        self._version += 1

    def mark_recovered(self, node_id: NodeId) -> None:
        """Clear a failure record (the node is selectable again)."""
        self._failed_at.pop(node_id, None)
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def members(self) -> List[NodeId]:
        """All registered node ids, including failed ones."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._member_set

    def is_failed(self, node_id: NodeId) -> bool:
        """Whether the node has crashed (regardless of detection)."""
        return node_id in self._failed_at

    def failed_at(self, node_id: NodeId) -> Optional[float]:
        """Time at which the node crashed, or ``None`` if it is alive."""
        return self._failed_at.get(node_id)

    def alive_members(self) -> List[NodeId]:
        """Node ids that have not crashed (ground truth, not detection)."""
        return [node_id for node_id in self._members if node_id not in self._failed_at]

    def selectable(self, now: float, exclude: Optional[NodeId] = None) -> List[NodeId]:
        """Nodes that appear alive at ``now`` from the point of view of peers.

        A crashed node remains selectable until ``detection_delay`` seconds
        after its crash, then disappears from every node's candidate set.

        The result is served from a cache keyed on the membership version
        and the earliest pending detection deadline; exclusion is cut out of
        the cached list by position, so the returned list is element-for-
        element identical to a fresh scan (partner sampling consumes it in
        order, so even the ordering is part of the determinism contract).
        """
        if (
            self._cache_version != self._version
            or now < self._cache_now
            or now >= self._cache_deadline
        ):
            self._rebuild_selectable_cache(now)
        base = self._cache_base
        if exclude is None:
            return base[:]
        position = self._cache_index.get(exclude)
        if position is None:
            return base[:]
        return base[:position] + base[position + 1 :]

    def _rebuild_selectable_cache(self, now: float) -> None:
        """Recompute the selectable base list and its validity window."""
        detection_delay = self.detection_delay
        failed_at = self._failed_at
        base: List[NodeId] = []
        index: Dict[NodeId, int] = {}
        deadline = float("inf")
        if failed_at:
            for node_id in self._members:
                failed_time = failed_at.get(node_id)
                if failed_time is not None:
                    detected_at = failed_time + detection_delay
                    if now >= detected_at:
                        continue
                    if detected_at < deadline:
                        deadline = detected_at
                index[node_id] = len(base)
                base.append(node_id)
        else:
            base = list(self._members)
            index = {node_id: position for position, node_id in enumerate(base)}
        self._cache_version = self._version
        self._cache_now = now
        self._cache_deadline = deadline
        self._cache_base = base
        self._cache_index = index

    def churn_candidates(self, protected: Iterable[NodeId] = ()) -> List[NodeId]:
        """Alive nodes eligible to be killed by a churn schedule.

        ``protected`` typically contains the stream source, which the paper
        never crashes.
        """
        protected_set = set(protected)
        return [
            node_id
            for node_id in self.alive_members()
            if node_id not in protected_set
        ]
