"""Full-membership directory with delayed failure detection.

The gossip protocol of the paper assumes each node can pick uniformly random
partners "in the set of all nodes" (Algorithm 1, line 26).  In the PlanetLab
deployment this knowledge is provided by a membership service; crucially,
when nodes crash, the rest of the system does not learn about it instantly —
dead nodes keep being selected for a short while, wasting fanout, which is
why survivors see a few seconds of degraded quality around a churn event
before the protocol recovers.

:class:`MembershipDirectory` models exactly that: a registry of node ids, a
failure timestamp per crashed node, and a ``detection_delay`` after which a
crashed node stops being returned by :meth:`selectable`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.network.message import NodeId


class MembershipDirectory:
    """Registry of all nodes with delayed failure visibility.

    Parameters
    ----------
    detection_delay:
        Seconds after a node's failure before other nodes stop selecting it.
        ``float("inf")`` models a system with no failure detection at all
        (dead nodes are selected forever); ``0`` models an oracle detector.
    """

    def __init__(self, detection_delay: float = 5.0) -> None:
        if detection_delay < 0.0:
            raise ValueError(f"detection_delay must be >= 0, got {detection_delay!r}")
        self.detection_delay = float(detection_delay)
        self._members: List[NodeId] = []
        self._member_set: set[NodeId] = set()
        self._failed_at: Dict[NodeId, float] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node_id: NodeId) -> None:
        """Register a node.  Adding an existing member is an error."""
        if node_id in self._member_set:
            raise ValueError(f"node {node_id} is already a member")
        self._members.append(node_id)
        self._member_set.add(node_id)

    def add_all(self, node_ids: Iterable[NodeId]) -> None:
        """Register several nodes at once."""
        for node_id in node_ids:
            self.add(node_id)

    def mark_failed(self, node_id: NodeId, time: float) -> None:
        """Record that ``node_id`` crashed at simulated ``time``."""
        if node_id not in self._member_set:
            raise KeyError(f"node {node_id} is not a member")
        self._failed_at.setdefault(node_id, time)

    def mark_recovered(self, node_id: NodeId) -> None:
        """Clear a failure record (the node is selectable again)."""
        self._failed_at.pop(node_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def members(self) -> List[NodeId]:
        """All registered node ids, including failed ones."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._member_set

    def is_failed(self, node_id: NodeId) -> bool:
        """Whether the node has crashed (regardless of detection)."""
        return node_id in self._failed_at

    def failed_at(self, node_id: NodeId) -> Optional[float]:
        """Time at which the node crashed, or ``None`` if it is alive."""
        return self._failed_at.get(node_id)

    def alive_members(self) -> List[NodeId]:
        """Node ids that have not crashed (ground truth, not detection)."""
        return [node_id for node_id in self._members if node_id not in self._failed_at]

    def selectable(self, now: float, exclude: Optional[NodeId] = None) -> List[NodeId]:
        """Nodes that appear alive at ``now`` from the point of view of peers.

        A crashed node remains selectable until ``detection_delay`` seconds
        after its crash, then disappears from every node's candidate set.
        """
        result: List[NodeId] = []
        for node_id in self._members:
            if node_id == exclude:
                continue
            failed_time = self._failed_at.get(node_id)
            if failed_time is not None and now >= failed_time + self.detection_delay:
                continue
            result.append(node_id)
        return result

    def churn_candidates(self, protected: Iterable[NodeId] = ()) -> List[NodeId]:
        """Alive nodes eligible to be killed by a churn schedule.

        ``protected`` typically contains the stream source, which the paper
        never crashes.
        """
        protected_set = set(protected)
        return [
            node_id
            for node_id in self.alive_members()
            if node_id not in protected_set
        ]
