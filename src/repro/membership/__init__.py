"""Membership substrate: who is in the system and who can be gossiped to.

The paper deliberately avoids any structured overlay: every node knows the
full membership and ``selectNodes(f)`` returns ``f`` uniformly random nodes.
This package provides that substrate plus the two proactiveness mechanisms
the paper studies and the churn injector used in Section 4.3:

* :class:`MembershipDirectory` — the full-membership list with a configurable
  failure-detection delay (failed nodes linger in views for a while, which is
  what produces the short quality dip around a churn event).
* :class:`PartnerSelector` — per-node partner set with the *view refresh
  rate* ``X`` (refresh ``selectNodes`` output every ``X`` gossip periods) and
  support for *feed-me* insertions (the ``Y`` mechanism).
* :class:`CatastrophicChurn` / :class:`StaggeredChurn` — churn schedules that
  fail a fraction of nodes at once (the paper's scenario) or progressively.
* :class:`FlashCrowdJoin` — the mirror perturbation: a burst of nodes
  *joining* mid-stream, kept out of the directory until their join time.
"""

from repro.membership.churn import (
    CatastrophicChurn,
    ChurnEvent,
    ChurnInjector,
    ChurnSchedule,
    NoChurn,
    StaggeredChurn,
)
from repro.membership.directory import MembershipDirectory
from repro.membership.join import FlashCrowdJoin, JoinEvent, JoinInjector, JoinSchedule
from repro.membership.partners import INFINITE, PartnerSelector, recommended_fanout

__all__ = [
    "CatastrophicChurn",
    "ChurnEvent",
    "ChurnInjector",
    "ChurnSchedule",
    "FlashCrowdJoin",
    "INFINITE",
    "JoinEvent",
    "JoinInjector",
    "JoinSchedule",
    "MembershipDirectory",
    "NoChurn",
    "PartnerSelector",
    "StaggeredChurn",
    "recommended_fanout",
]
