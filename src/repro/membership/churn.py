"""Churn schedules.

Section 4.3 of the paper evaluates a *catastrophic* churn scenario: at a
given instant, a randomly chosen percentage of the nodes (10 % to 80 %) fail
simultaneously.  :class:`CatastrophicChurn` reproduces it.  A staggered
variant is provided as an extension for sensitivity studies.

A churn schedule only *decides* who fails and when; applying the failure
(stopping the node, telling the network and the directory) is done by the
callback supplied by the experiment runner, so the schedule stays independent
of the protocol wiring.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

from repro.network.message import NodeId

FailCallback = Callable[[List[NodeId]], None]


@dataclass(frozen=True)
class ChurnEvent:
    """A single churn step: at ``time``, all of ``victims`` fail together."""

    time: float
    victims: tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"churn time must be >= 0, got {self.time!r}")


class ChurnSchedule(ABC):
    """Base class: produces the list of churn events for one experiment."""

    @abstractmethod
    def events(self, candidates: Sequence[NodeId], rng: random.Random) -> List[ChurnEvent]:
        """Compute the churn events given the killable nodes."""

    def describe(self) -> str:
        """Human-readable one-line description for experiment reports."""
        return type(self).__name__


class NoChurn(ChurnSchedule):
    """Baseline: nobody ever fails."""

    def events(self, candidates: Sequence[NodeId], rng: random.Random) -> List[ChurnEvent]:
        return []

    def describe(self) -> str:
        return "no churn"


class CatastrophicChurn(ChurnSchedule):
    """The paper's scenario: a fraction of nodes fail simultaneously.

    Parameters
    ----------
    time:
        Simulated time of the failure, typically mid-stream.
    fraction:
        Fraction of the candidate nodes to kill, in [0, 1].
    """

    def __init__(self, time: float, fraction: float) -> None:
        if time < 0.0:
            raise ValueError(f"time must be >= 0, got {time!r}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        self.time = float(time)
        self.fraction = float(fraction)

    def events(self, candidates: Sequence[NodeId], rng: random.Random) -> List[ChurnEvent]:
        count = int(round(len(candidates) * self.fraction))
        if count == 0:
            return []
        victims = tuple(sorted(rng.sample(list(candidates), count)))
        return [ChurnEvent(time=self.time, victims=victims)]

    def describe(self) -> str:
        return f"catastrophic churn: {self.fraction:.0%} of nodes at t={self.time:.0f}s"


class StaggeredChurn(ChurnSchedule):
    """Extension: the same total fraction of failures spread over a period.

    Victims fail one batch per ``interval`` seconds starting at ``start``.
    Useful to study whether gossip's resilience depends on failures being
    simultaneous (the paper's worst case) or gradual.
    """

    def __init__(self, start: float, fraction: float, batches: int, interval: float) -> None:
        if start < 0.0 or interval <= 0.0 or batches < 1:
            raise ValueError("invalid staggered churn parameters")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        self.start = float(start)
        self.fraction = float(fraction)
        self.batches = int(batches)
        self.interval = float(interval)

    def events(self, candidates: Sequence[NodeId], rng: random.Random) -> List[ChurnEvent]:
        total = int(round(len(candidates) * self.fraction))
        if total == 0:
            return []
        victims = rng.sample(list(candidates), total)
        per_batch = max(1, total // self.batches)
        events: List[ChurnEvent] = []
        for batch_index in range(self.batches):
            batch = victims[batch_index * per_batch : (batch_index + 1) * per_batch]
            if batch_index == self.batches - 1:
                batch = victims[batch_index * per_batch :]
            if not batch:
                continue
            events.append(
                ChurnEvent(
                    time=self.start + batch_index * self.interval,
                    victims=tuple(sorted(batch)),
                )
            )
        return events

    def describe(self) -> str:
        return (
            f"staggered churn: {self.fraction:.0%} of nodes in {self.batches} batches "
            f"every {self.interval:.0f}s from t={self.start:.0f}s"
        )


class ChurnInjector:
    """Schedules a churn plan on a simulator and applies it via a callback."""

    def __init__(self, simulator, schedule: ChurnSchedule, on_fail: FailCallback) -> None:
        self._simulator = simulator
        self._schedule = schedule
        self._on_fail = on_fail
        self._planned: List[ChurnEvent] = []
        self._applied_victims: List[NodeId] = []

    @property
    def planned_events(self) -> List[ChurnEvent]:
        """The churn events computed by :meth:`arm`."""
        return list(self._planned)

    @property
    def failed_nodes(self) -> List[NodeId]:
        """Victims whose failure has already been applied."""
        return list(self._applied_victims)

    def arm(self, candidates: Iterable[NodeId], rng: random.Random) -> List[ChurnEvent]:
        """Compute the events and schedule them on the simulator."""
        self._planned = self._schedule.events(list(candidates), rng)
        for event in self._planned:
            self._simulator.schedule_at(event.time, self._apply, event)
        return list(self._planned)

    def _apply(self, event: ChurnEvent) -> None:
        victims = list(event.victims)
        self._applied_victims.extend(victims)
        self._on_fail(victims)
