"""Join schedules: nodes that enter the system mid-stream.

The paper's deployment starts all 230 nodes before the stream; real live
streaming systems instead see *flash crowds* — a burst of viewers joining
once the stream is already running.  A :class:`JoinSchedule` decides which
nodes are late joiners and when they come up; applying the join (adding the
node to the membership directory and starting its timers) is done by a
callback supplied by the session, mirroring how churn schedules stay
independent of the protocol wiring.

A late joiner only receives packets proposed after its join time: gossip is
a live dissemination protocol, not a catch-up protocol, so the stream-lag
metrics naturally report the joiner's truncated view.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.network.message import NodeId

JoinCallback = Callable[[List[NodeId]], None]


@dataclass(frozen=True)
class JoinEvent:
    """A single join step: at ``time``, all of ``joiners`` come online."""

    time: float
    joiners: tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"join time must be >= 0, got {self.time!r}")


class JoinSchedule(ABC):
    """Base class: partitions nodes into initial members and late joiners."""

    @abstractmethod
    def events(self, candidates: Sequence[NodeId]) -> List[JoinEvent]:
        """Compute the join events given the joinable (non-source) nodes."""

    def late_joiners(self, candidates: Sequence[NodeId]) -> List[NodeId]:
        """All nodes that join late (must stay out of the initial directory)."""
        return [node_id for event in self.events(candidates) for node_id in event.joiners]

    def describe(self) -> str:
        """Human-readable one-line description for experiment reports."""
        return type(self).__name__


class FlashCrowdJoin(JoinSchedule):
    """A fraction of the nodes joins in one burst at a given instant.

    Parameters
    ----------
    time:
        Simulated time of the burst, typically mid-stream.
    fraction:
        Fraction of the candidate nodes that are late joiners, in [0, 1].
        The *last* ids join late, so the initial swarm is a contiguous
        prefix — deterministic for a given configuration.
    """

    def __init__(self, time: float, fraction: float) -> None:
        if time < 0.0:
            raise ValueError(f"time must be >= 0, got {time!r}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        self.time = float(time)
        self.fraction = float(fraction)

    def events(self, candidates: Sequence[NodeId]) -> List[JoinEvent]:
        count = int(round(len(candidates) * self.fraction))
        if count == 0:
            return []
        joiners = tuple(sorted(candidates)[-count:])
        return [JoinEvent(time=self.time, joiners=joiners)]

    def describe(self) -> str:
        return f"flash crowd: {self.fraction:.0%} of nodes join at t={self.time:.0f}s"


class JoinInjector:
    """Schedules a join plan on a simulator and applies it via a callback."""

    def __init__(self, simulator, schedule: JoinSchedule, on_join: JoinCallback) -> None:
        self._simulator = simulator
        self._schedule = schedule
        self._on_join = on_join
        self._planned: List[JoinEvent] = []
        self._joined: List[NodeId] = []

    @property
    def planned_events(self) -> List[JoinEvent]:
        """The join events computed by :meth:`arm`."""
        return list(self._planned)

    @property
    def joined_nodes(self) -> List[NodeId]:
        """Joiners whose arrival has already been applied."""
        return list(self._joined)

    def arm_events(self, events: Sequence[JoinEvent]) -> List[JoinEvent]:
        """Schedule an already-computed join plan.

        Deliberately the *only* arming entry point: the caller evaluates
        ``schedule.events()`` exactly once and derives both the initial
        directory membership and this plan from it — an ``arm(candidates)``
        convenience that re-evaluated the schedule would let a stateful or
        randomized schedule produce two different partitions.
        """
        self._planned = list(events)
        for event in self._planned:
            self._simulator.schedule_at(event.time, self._apply, event)
        return list(self._planned)

    def _apply(self, event: JoinEvent) -> None:
        joiners = list(event.joiners)
        self._joined.extend(joiners)
        self._on_join(joiners)
