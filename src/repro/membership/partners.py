"""Partner selection: the proactiveness knobs ``X`` and ``Y``.

Section 3 of the paper defines proactiveness as the rate at which a node's
set of communication partners changes, explored two ways:

* the node *locally refreshes* the output of ``selectNodes`` every ``X``
  gossip periods (``X = 1``: fresh random partners every round; ``X = ∞``:
  a static mesh);
* every ``Y`` periods the node sends a *feed-me* request to ``f`` random
  nodes; each of them replaces a uniformly random member of its current
  partner set with the requester.

:class:`PartnerSelector` implements both: the refresh counter drives local
resampling, and :meth:`insert_requester` implements the receiving side of a
feed-me request.  The sending side (actually emitting FEED_ME datagrams)
lives in the protocol (:mod:`repro.core.protocol`) because it consumes
bandwidth like any other message.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.network.message import NodeId

from repro.membership.directory import MembershipDirectory

INFINITE: float = math.inf
"""Sentinel for "never" — used for both ``X = ∞`` and ``Y = ∞``."""


class PartnerSelector:
    """Per-node gossip partner set with refresh rate ``X``.

    Parameters
    ----------
    node_id:
        The owning node.
    directory:
        Full-membership directory used for sampling.
    fanout:
        Number of partners per gossip round (``f``).
    refresh_every:
        The paper's ``X``: partners are resampled every ``refresh_every``
        calls to :meth:`partners_for_round`.  Use :data:`INFINITE` for a
        static partner set.
    rng:
        Per-node random stream (so experiments are reproducible and
        independent across nodes).
    """

    def __init__(
        self,
        node_id: NodeId,
        directory: MembershipDirectory,
        fanout: int,
        refresh_every: float,
        rng: random.Random,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout!r}")
        if refresh_every != INFINITE:
            if refresh_every < 1 or int(refresh_every) != refresh_every:
                raise ValueError(
                    f"refresh_every must be a positive integer or INFINITE, got {refresh_every!r}"
                )
        self.node_id = node_id
        self.fanout = int(fanout)
        self.refresh_every = refresh_every
        self._directory = directory
        self._rng = rng
        self._partners: Optional[List[NodeId]] = None
        self._rounds_since_refresh = 0
        self._refresh_count = 0

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    @property
    def refresh_count(self) -> int:
        """How many times the partner set has been (re)sampled."""
        return self._refresh_count

    def current_partners(self) -> List[NodeId]:
        """The current partner set (empty before the first round)."""
        return list(self._partners) if self._partners is not None else []

    def _sample(self, now: float) -> List[NodeId]:
        candidates = self._directory.selectable(now, exclude=self.node_id)
        if not candidates:
            return []
        count = min(self.fanout, len(candidates))
        sampled = self._rng.sample(candidates, count)
        self._refresh_count += 1
        return sampled

    def partners_for_round(self, now: float) -> List[NodeId]:
        """Partners to gossip to for the round starting at ``now``.

        Implements the refresh-every-``X`` semantics: the first call always
        samples; subsequent calls reuse the same set until ``X`` rounds have
        used it, then resample.  With ``X = ∞`` the initial sample is kept
        for the node's whole lifetime (even if some partners crash — exactly
        the fragility the paper measures).
        """
        if self._partners is None:
            self._partners = self._sample(now)
            self._rounds_since_refresh = 1
            return list(self._partners)

        if self.refresh_every != INFINITE and self._rounds_since_refresh >= self.refresh_every:
            self._partners = self._sample(now)
            self._rounds_since_refresh = 1
            return list(self._partners)

        self._rounds_since_refresh += 1
        return list(self._partners)

    # ------------------------------------------------------------------
    # Feed-me support (the ``Y`` mechanism, receiving side)
    # ------------------------------------------------------------------
    def insert_requester(self, requester: NodeId, now: float) -> bool:
        """Replace a uniformly random current partner with ``requester``.

        Implements the receiving side of a feed-me request: "each of the
        random ``f`` partners replaces a random node from its current set of
        ``f`` partners with A".  Returns ``True`` if the set changed.
        """
        if requester == self.node_id:
            return False
        if self._partners is None:
            self._partners = self._sample(now)
        if not self._partners:
            self._partners = [requester]
            return True
        if requester in self._partners:
            return False
        victim_index = self._rng.randrange(len(self._partners))
        self._partners[victim_index] = requester
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def pick_feed_me_targets(self, now: float) -> List[NodeId]:
        """``f`` uniformly random nodes to send a feed-me request to."""
        candidates = self._directory.selectable(now, exclude=self.node_id)
        if not candidates:
            return []
        count = min(self.fanout, len(candidates))
        return self._rng.sample(candidates, count)

    def reset(self) -> None:
        """Forget the current partner set (next round resamples)."""
        self._partners = None
        self._rounds_since_refresh = 0


def recommended_fanout(system_size: int, margin: int = 2) -> int:
    """The paper's rule of thumb: ``f = ln(n) + c`` rounded up.

    For 230 nodes and ``margin = 2`` this gives 8, close to the empirically
    optimal 7–15 window reported in Figure 1.
    """
    if system_size < 2:
        raise ValueError(f"system size must be >= 2, got {system_size!r}")
    return int(math.ceil(math.log(system_size))) + margin
