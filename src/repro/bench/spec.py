"""Benchmark specifications and the registry that discovers them.

A :class:`Benchmark` declares everything the unified runner needs to execute
and *gate* it: a name, tags for ``--filter`` selection, a warmup/repeat
policy, and — centrally — the list of :class:`Metric` specs describing what
the runner function reports and how each number may be compared against a
recorded baseline.

The comparison policy is the subsystem's answer to noisy 1-core CI runners:

* ``identity`` metrics are **deterministic** quantities (events dispatched,
  figure-table checksums, delivery ratios of a seeded simulation).  They do
  not depend on the host at all and must match the baseline exactly — *any*
  drift means the simulation's behaviour changed and the baseline must be
  consciously re-recorded.
* ``counter`` metrics are deterministic too, but carry a direction (a
  figure's headline viewing percentage): an exact comparison still applies,
  yet a change in the good direction reads as an improvement rather than a
  regression.
* ``ratio`` metrics are **in-process comparisons** — a fast path timed
  against its pinned reference implementation *in the same process on the
  same data*.  The quotient is far more stable than either wall-clock
  number, so ratios are gated with a wide relative band.
* ``rate`` and ``info`` metrics are wall-clock quantities (events/s, wall
  seconds).  On shared runners they can swing by integer factors for
  reasons that have nothing to do with the code, so they are recorded for
  trend-watching but **never gated** unless a benchmark opts in with an
  explicit tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default relative tolerance band per metric kind (``None`` = never gated).
DEFAULT_TOLERANCES: Mapping[str, Optional[float]] = {
    "identity": 0.0,
    "counter": 0.0,
    "ratio": 0.5,
    "rate": None,
    "info": None,
}

METRIC_KINDS = tuple(DEFAULT_TOLERANCES)

#: Kinds whose values are deterministic and therefore compared exactly
#: (JSON round-trips Python floats losslessly, so exact equality is sound).
EXACT_KINDS = ("identity", "counter")


@dataclass(frozen=True)
class Metric:
    """One number a benchmark reports, plus its comparison policy.

    Attributes
    ----------
    name:
        Key in the runner's returned metrics dict.
    kind:
        ``identity`` / ``counter`` / ``ratio`` / ``rate`` / ``info``
        (see module docstring).
    higher_is_better:
        Direction used both to combine repeats (best-of keeps the max or the
        min) and to orient the regression band.
    tolerance:
        Relative band overriding the kind default.  Setting a tolerance on a
        ``rate`` metric opts it into gating.
    unit:
        Display hint only.
    """

    name: str
    kind: str = "identity"
    higher_is_better: bool = True
    tolerance: Optional[float] = None
    unit: str = ""

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}; expected one of {METRIC_KINDS}")

    @property
    def band(self) -> Optional[float]:
        """The effective relative tolerance (``None`` = not gated)."""
        if self.tolerance is not None:
            return self.tolerance
        return DEFAULT_TOLERANCES[self.kind]

    @property
    def gated(self) -> bool:
        """Whether a baseline comparison of this metric can fail the gate."""
        return self.kind != "info" and self.band is not None


@dataclass
class BenchContext:
    """Everything a benchmark runner receives from the harness.

    ``options`` carries ``--option key=value`` overrides from the CLI (and
    the legacy shims' size flags); ``cache`` is a summary cache shared by
    every benchmark of one ``run`` invocation, so consecutive figure
    benchmarks reuse overlapping simulation points exactly like the old
    pytest session did.
    """

    scale_name: str
    options: Dict[str, str] = field(default_factory=dict)
    cache: Optional[object] = None
    verbose: bool = True

    @property
    def scale(self):
        """The :class:`~repro.experiments.scale.ExperimentScale` object."""
        from repro.experiments.scale import scale_by_name

        return scale_by_name(self.scale_name)

    def option_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """An integer override, or ``default`` when absent."""
        raw = self.options.get(name)
        return default if raw is None else int(raw)

    def summary_cache(self):
        """The shared (lazily created) cross-benchmark summary cache."""
        if self.cache is None:
            from repro.sweep.cache import SummaryCache

            self.cache = SummaryCache()
        return self.cache

    def log(self, message: str) -> None:
        """Progress print, silenced when the harness runs quietly."""
        if self.verbose:
            print(message)


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: spec + runner.

    Attributes
    ----------
    name:
        Stable identifier; baselines live in ``BENCH_<name>.json``.
    run:
        ``run(ctx) -> {metric name: float}`` — one measurement repetition.
    metrics:
        Specs for every metric ``run`` returns (extra keys are rejected, so
        reports cannot silently drift from their declared schema).
    repeats / smoke_repeats:
        Measurement repetitions at full / smoke scale.  Repeats are combined
        per metric: best-of for timed kinds, required-identical for
        ``counter`` metrics (a deterministic quantity that varies across
        repeats is a bug worth failing loudly on).
    warmup:
        Optional callable executed once before the timed repetitions.
    drop_cache_after:
        Clear the shared summary cache once this benchmark finishes (bounds
        memory between figure groups, mirroring the old pytest fixtures).
    """

    name: str
    description: str
    run: Callable[[BenchContext], Mapping[str, float]]
    metrics: Tuple[Metric, ...]
    tags: Tuple[str, ...] = ()
    repeats: int = 1
    smoke_repeats: int = 1
    warmup: Optional[Callable[[BenchContext], None]] = None
    drop_cache_after: bool = False

    def repeats_for(self, scale_name: str) -> int:
        """The repeat policy at the given scale."""
        return self.smoke_repeats if scale_name == "smoke" else self.repeats

    def metric(self, name: str) -> Metric:
        """The spec of one declared metric."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"benchmark {self.name!r} declares no metric {name!r}")

    def matches(self, pattern: str) -> bool:
        """One ``--filter`` pattern against this benchmark.

        A plain pattern is a substring match against the name or any tag; a
        ``tag:<name>`` pattern matches the tag *exactly* (so ``tag:figure``
        selects the figure suite without also catching a benchmark whose
        name merely contains "figure").
        """
        needle = pattern.lower()
        if needle.startswith("tag:"):
            wanted = needle[len("tag:"):]
            return any(tag.lower() == wanted for tag in self.tags)
        if needle in self.name.lower():
            return True
        return any(needle in tag.lower() for tag in self.tags)


class BenchmarkRegistry:
    """Ordered collection of registered benchmarks.

    Registration order is execution order — figure benchmarks rely on it so
    the shared summary cache is reused (figure 2 reads figure 1's points)
    and cleared at the declared group boundaries.
    """

    def __init__(self) -> None:
        self._benchmarks: Dict[str, Benchmark] = {}

    def register(self, benchmark: Benchmark) -> Benchmark:
        """Add one benchmark; duplicate names are an error."""
        if benchmark.name in self._benchmarks:
            raise ValueError(f"benchmark {benchmark.name!r} is already registered")
        self._benchmarks[benchmark.name] = benchmark
        return benchmark

    def names(self) -> List[str]:
        """All registered names, in registration order."""
        return list(self._benchmarks)

    def get(self, name: str) -> Benchmark:
        """Look one benchmark up by exact name."""
        try:
            return self._benchmarks[name]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {name!r}; registered: {', '.join(self._benchmarks)}"
            ) from None

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __iter__(self):
        return iter(self._benchmarks.values())

    def select(self, patterns: Sequence[str] = ()) -> List[Benchmark]:
        """Benchmarks matching *any* pattern (all of them for no patterns).

        Each pattern may itself be a comma-separated list, so
        ``--filter engine,codec`` and ``--filter engine --filter codec``
        select the same set.  ``tag:<name>`` entries match tags exactly
        (see :meth:`Benchmark.matches`).
        """
        expanded = [
            part.strip()
            for pattern in patterns
            for part in pattern.split(",")
            if part.strip()
        ]
        if not expanded:
            return list(self._benchmarks.values())
        selected = [
            benchmark
            for benchmark in self._benchmarks.values()
            if any(benchmark.matches(pattern) for pattern in expanded)
        ]
        return selected


_DEFAULT_REGISTRY = BenchmarkRegistry()


def default_registry() -> BenchmarkRegistry:
    """The process-wide registry the suite module populates on import."""
    return _DEFAULT_REGISTRY


def scaled(benchmark: Benchmark, **changes) -> Benchmark:
    """A copy of ``benchmark`` with fields replaced (test helper)."""
    return replace(benchmark, **changes)
