"""Unified benchmark subsystem: registry, runner, baselines, CI gate.

The twelve standalone ``benchmarks/bench_*.py`` scripts register here as
:class:`Benchmark` specs; one runner executes any subset
(``python -m repro.bench run --filter engine --scale smoke --json out.json``),
every run writes the same versioned JSON report schema, and a committed
:class:`BaselineStore` under ``benchmarks/baselines/`` turns reports into a
regression verdict (``python -m repro.bench compare <report>``).

Designed for noisy 1-core CI runners: only deterministic counters and
in-process fast-path/reference ratios gate; wall-clock rates are recorded as
trend information.  See :mod:`repro.bench.spec` for the policy.
"""

from repro.bench.baseline import (
    BaselineStore,
    CompareOutcome,
    MetricVerdict,
    compare_record,
    compare_report,
    default_baseline_root,
)
from repro.bench.report import BenchmarkRecord, BenchReport, ReportError, host_hints
from repro.bench.runner import BenchmarkRunError, run_benchmark, run_selected
from repro.bench.spec import (
    Benchmark,
    BenchContext,
    BenchmarkRegistry,
    Metric,
    default_registry,
)
from repro.bench import suite as _suite  # populates the default registry

register_all = _suite.register_all

__all__ = [
    "BaselineStore",
    "BenchContext",
    "Benchmark",
    "BenchmarkRecord",
    "BenchmarkRegistry",
    "BenchmarkRunError",
    "BenchReport",
    "CompareOutcome",
    "Metric",
    "MetricVerdict",
    "ReportError",
    "compare_record",
    "compare_report",
    "default_baseline_root",
    "default_registry",
    "host_hints",
    "register_all",
    "run_benchmark",
    "run_selected",
]
