"""``python -m repro.bench`` — run, compare, record and list benchmarks.

Subcommands::

    run      execute registered benchmarks, optionally writing the report
             (``--filter`` selects by substring of name or tag, accepts
             comma-separated lists and exact ``tag:<name>`` patterns;
             ``--profile`` additionally writes one cProfile pstats file
             per benchmark under ``benchmarks/results/`` and prints the
             dump path plus a hot-path summary sorted by ``--profile-sort``)
    compare  gate a report against the committed baselines (exit 1 on a
             regression verdict; ``REPRO_BENCH_NO_GATE=1`` downgrades the
             failure to a warning for emergencies)
    record   freeze a report's records as the new baselines
    list     show every registered benchmark

The CI ``bench-smoke`` job is exactly::

    python -m repro.bench run --scale smoke --json benchmarks/results/BENCH_smoke.json
    python -m repro.bench compare benchmarks/results/BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.bench.baseline import BaselineStore, compare_report
from repro.bench.report import BenchReport, ReportError
from repro.bench.runner import (
    DEFAULT_PROFILE_DIR,
    PROFILE_SORTS,
    BenchmarkSelectionError,
    run_selected,
)
from repro.bench.spec import default_registry

NO_GATE_ENV = "REPRO_BENCH_NO_GATE"


def _parse_options(pairs: Sequence[str]) -> dict:
    options = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"--option expects key=value, got {pair!r}")
        options[key] = value
    return options


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Unified benchmark runner with an in-repo baseline store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute registered benchmarks")
    run.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="PATTERN",
        help=(
            "benchmark selector: substring of a name or tag, or tag:<name> for "
            "an exact tag match; comma-separated lists and repeats both union "
            "(default: all)"
        ),
    )
    run.add_argument("--scale", default="smoke", help="experiment scale (default: smoke)")
    run.add_argument("--json", metavar="PATH", help="write the combined report to PATH")
    run.add_argument(
        "--repeat", type=int, metavar="N", help="override every benchmark's repeat policy"
    )
    run.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="benchmark-specific override (e.g. nodes=40, jobs=4); repeatable",
    )
    run.add_argument(
        "--record-baseline",
        action="store_true",
        help="freeze this run's records as the new baselines",
    )
    run.add_argument(
        "--baseline-dir", metavar="DIR", help="baseline root (default: benchmarks/baselines)"
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-benchmark progress")
    run.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each benchmark under cProfile and write "
            f"{DEFAULT_PROFILE_DIR}/PROFILE_<name>.pstats (timed metrics are "
            "then not comparable to unprofiled baselines)"
        ),
    )
    run.add_argument(
        "--profile-dir",
        metavar="DIR",
        default=DEFAULT_PROFILE_DIR,
        help=f"where --profile writes pstats files (default: {DEFAULT_PROFILE_DIR})",
    )
    run.add_argument(
        "--profile-sort",
        choices=PROFILE_SORTS,
        default="cumulative",
        help="sort key of the inline hot-path summary --profile prints "
        "(default: cumulative)",
    )

    compare = commands.add_parser("compare", help="gate a report against the baselines")
    compare.add_argument("report", help="report file produced by `run --json`")
    compare.add_argument(
        "--baseline-dir", metavar="DIR", help="baseline root (default: benchmarks/baselines)"
    )

    record = commands.add_parser("record", help="freeze a report as the new baselines")
    record.add_argument("report", help="report file produced by `run --json`")
    record.add_argument(
        "--baseline-dir", metavar="DIR", help="baseline root (default: benchmarks/baselines)"
    )

    listing = commands.add_parser("list", help="show registered benchmarks")
    listing.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="PATTERN",
        help="same selector syntax as `run --filter` (substrings, commas, tag:<name>)",
    )
    return parser


def _cmd_run(args) -> int:
    registry = default_registry()
    report = run_selected(
        registry,
        patterns=args.filter,
        scale_name=args.scale,
        options=_parse_options(args.option),
        repeats_override=args.repeat,
        verbose=not args.quiet,
        profile_dir=args.profile_dir if args.profile else None,
        profile_sort=args.profile_sort,
    )
    if args.json:
        path = report.write(args.json)
        print(f"report written to {path}")
    if args.record_baseline:
        store = BaselineStore(args.baseline_dir)
        written = store.record(report)
        print(f"recorded {len(written)} baseline(s) under {store.root}")
    return 0


def _cmd_compare(args) -> int:
    registry = default_registry()
    report = BenchReport.load(args.report)
    store = BaselineStore(args.baseline_dir)
    outcome = compare_report(report, registry, store)
    print(outcome.table())
    if not outcome.has_regressions:
        gated = sum(1 for v in outcome.verdicts if v.status in ("ok", "improved"))
        print(f"\nverdict: no regressions ({gated} gated metric(s) within band)")
        return 0
    names = ", ".join(f"{v.benchmark}:{v.metric}" for v in outcome.regressions)
    if os.environ.get(NO_GATE_ENV):
        print(f"\nverdict: REGRESSION in {names} — ignored ({NO_GATE_ENV} is set)")
        return 0
    print(f"\nverdict: REGRESSION in {names}")
    return 1


def _cmd_record(args) -> int:
    report = BenchReport.load(args.report)
    store = BaselineStore(args.baseline_dir)
    written = store.record(report)
    for path in written:
        print(f"recorded {path}")
    return 0


def _cmd_list(args) -> int:
    registry = default_registry()
    selected = registry.select(args.filter)
    if not selected:
        print("no benchmark matches the filter")
        return 1
    width = max(len(benchmark.name) for benchmark in selected)
    for benchmark in selected:
        gated = sum(1 for metric in benchmark.metrics if metric.gated)
        tags = ",".join(benchmark.tags)
        print(
            f"{benchmark.name:<{width}}  [{tags}]  "
            f"{gated}/{len(benchmark.metrics)} gated metrics — {benchmark.description}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "record": _cmd_record,
        "list": _cmd_list,
    }
    # Only *usage* errors are turned into exit code 2: a bad report file or
    # a filter matching nothing.  Failures inside a running benchmark (an
    # assertion, a KeyError in a generator) propagate with their traceback —
    # those are code bugs, not CLI mistakes.
    try:
        return handlers[args.command](args)
    except (ReportError, BenchmarkSelectionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
