"""In-repo baseline store and the noise-robust regression comparison.

Baselines are committed, per-benchmark, per-scale report files::

    benchmarks/baselines/<scale>/BENCH_<benchmark>.json

Each file is a single-record :class:`~repro.bench.report.BenchReport`, so a
baseline is simply a frozen run of the same schema everything else writes.
``python -m repro.bench record <report>`` refreshes them from a run's
combined report (the documented workflow after an *intentional* behaviour
or performance change, exactly like regenerating golden files).

Comparison walks every record of a fresh report against its baseline and
produces one :class:`MetricVerdict` per declared metric.  Only metrics whose
spec gates (deterministic counters and in-process ratios — see
:mod:`repro.bench.spec`) can yield ``regressed``; wall-clock rates are
reported but cannot fail CI on a noisy runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.bench.report import BenchmarkRecord, BenchReport, ReportError, current_fingerprint
from repro.bench.spec import EXACT_KINDS, Benchmark, BenchmarkRegistry, Metric

#: Verdict statuses, from best to worst.
IMPROVED = "improved"
OK = "ok"
INFO = "info"
NEW = "new"
REGRESSED = "regressed"


def default_baseline_root() -> Path:
    """``benchmarks/baselines`` of the repository this package lives in.

    The package sits at ``<repo>/src/repro/bench``, so the repo root is
    three levels up; when the package is installed elsewhere (no
    ``benchmarks/`` sibling), fall back to the working directory so the CLI
    flag / relative layout still works.
    """
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "benchmarks" / "baselines"
    if (repo_root / "benchmarks").is_dir():
        return candidate
    return Path("benchmarks") / "baselines"


@dataclass(frozen=True)
class MetricVerdict:
    """The comparison outcome of one metric of one benchmark."""

    benchmark: str
    metric: str
    status: str
    value: float
    baseline: Optional[float] = None
    band: Optional[float] = None
    note: str = ""

    def describe(self) -> str:
        """One aligned row of the verdict table."""
        value = f"{self.value:,.6g}"
        baseline = "-" if self.baseline is None else f"{self.baseline:,.6g}"
        if self.baseline is not None and self.value != self.baseline and value == baseline:
            # Exact-compare mismatch invisible at 6 significant digits
            # (e.g. a 48-bit checksum off by one): show full precision.
            value = f"{self.value:,.17g}"
            baseline = f"{self.baseline:,.17g}"
        band = "-" if self.band is None else f"±{self.band:.0%}"
        note = f"  {self.note}" if self.note else ""
        return (
            f"{self.status:<9} {self.benchmark:<24} {self.metric:<28} "
            f"{value:>14} {baseline:>14} {band:>6}{note}"
        )


@dataclass
class CompareOutcome:
    """All verdicts of one report comparison."""

    scale: str
    verdicts: List[MetricVerdict]
    notes: List[str]

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.status == REGRESSED]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def table(self) -> str:
        """The full verdict table as text."""
        header = (
            f"{'status':<9} {'benchmark':<24} {'metric':<28} "
            f"{'value':>14} {'baseline':>14} {'band':>6}"
        )
        lines = [header, "-" * len(header)]
        lines.extend(verdict.describe() for verdict in self.verdicts)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


class BaselineStore:
    """Reads and writes the committed per-benchmark baseline files."""

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else default_baseline_root()

    def path_for(self, scale: str, benchmark: str) -> Path:
        return self.root / scale / f"BENCH_{benchmark}.json"

    def load(self, scale: str, benchmark: str) -> Optional[BenchmarkRecord]:
        """The baseline record, or ``None`` when never recorded."""
        path = self.path_for(scale, benchmark)
        if not path.exists():
            return None
        report = BenchReport.load(path)
        if report.scale != scale:
            raise ReportError(
                f"baseline {path} was recorded at scale {report.scale!r}, "
                f"but sits in the {scale!r} directory"
            )
        return report.single()

    def record(self, report: BenchReport) -> List[Path]:
        """Freeze every record of ``report`` as that benchmark's baseline."""
        written = []
        for record in report.results:
            baseline = BenchReport(
                scale=report.scale,
                fingerprint=report.fingerprint,
                results=[record],
                host=report.host,
            )
            written.append(baseline.write(self.path_for(report.scale, record.benchmark)))
        return written


def _verdict_for(metric: Metric, benchmark: str, value: float, baseline: Optional[float]):
    """Compare one metric value against its baseline under the spec's band."""
    if not metric.gated:
        return MetricVerdict(benchmark, metric.name, INFO, value, baseline, None)
    if baseline is None:
        return MetricVerdict(
            benchmark, metric.name, NEW, value, None, metric.band, "no baseline metric"
        )
    if metric.kind in EXACT_KINDS:
        # Deterministic quantities: exact equality or it counts.  ``identity``
        # has no good direction — any drift is a behaviour change.
        if value == baseline:
            return MetricVerdict(benchmark, metric.name, OK, value, baseline, 0.0)
        if metric.kind == "identity":
            return MetricVerdict(
                benchmark,
                metric.name,
                REGRESSED,
                value,
                baseline,
                0.0,
                "deterministic value changed — re-record if intentional",
            )
        improved = (value > baseline) == metric.higher_is_better
        return MetricVerdict(
            benchmark, metric.name, IMPROVED if improved else REGRESSED, value, baseline, 0.0
        )
    band = metric.band or 0.0
    scale = abs(baseline) if baseline != 0 else 1.0
    delta = value - baseline
    if not metric.higher_is_better:
        delta = -delta
    if delta < -band * scale:
        return MetricVerdict(benchmark, metric.name, REGRESSED, value, baseline, metric.band)
    if delta > band * scale:
        return MetricVerdict(benchmark, metric.name, IMPROVED, value, baseline, metric.band)
    return MetricVerdict(benchmark, metric.name, OK, value, baseline, metric.band)


def compare_record(
    benchmark: Benchmark,
    record: BenchmarkRecord,
    baseline: Optional[BenchmarkRecord],
) -> List[MetricVerdict]:
    """Verdicts for every *declared* metric of one benchmark."""
    verdicts = []
    for metric in benchmark.metrics:
        if metric.name not in record.metrics:
            verdicts.append(
                MetricVerdict(
                    benchmark.name,
                    metric.name,
                    REGRESSED,
                    float("nan"),
                    None,
                    metric.band,
                    "metric missing from report",
                )
            )
            continue
        value = record.metrics[metric.name]
        base_value = baseline.metrics.get(metric.name) if baseline is not None else None
        verdicts.append(_verdict_for(metric, benchmark.name, value, base_value))
    return verdicts


def compare_report(
    report: BenchReport,
    registry: BenchmarkRegistry,
    store: Optional[BaselineStore] = None,
) -> CompareOutcome:
    """Compare a run report against the committed baselines.

    Benchmarks present in the report but unknown to the registry are noted
    and skipped (their metric specs — and hence their gating policy — are
    gone, so nothing can be concluded); missing baselines produce ``new``
    verdicts, which do not fail the gate but tell you to ``record``.
    """
    store = store if store is not None else BaselineStore()
    verdicts: List[MetricVerdict] = []
    notes: List[str] = []
    for record in report.results:
        try:
            benchmark = registry.get(record.benchmark)
        except KeyError:
            notes.append(f"report contains unregistered benchmark {record.benchmark!r}; skipped")
            continue
        baseline = store.load(report.scale, record.benchmark)
        if baseline is None:
            notes.append(
                f"no baseline for {record.benchmark!r} at scale {report.scale!r} "
                f"(record one with: python -m repro.bench record <report>)"
            )
        verdicts.extend(compare_record(benchmark, record, baseline))
    if report.fingerprint != current_fingerprint():
        notes.append("report was produced by a different code fingerprint than the running tree")
    return CompareOutcome(scale=report.scale, verdicts=verdicts, notes=notes)
