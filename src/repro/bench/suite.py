"""The registered benchmark suite — every ``benchmarks/bench_*.py`` as a spec.

Importing this module populates :func:`repro.bench.spec.default_registry`
with the fifteen benchmarks the repo tracks:

* ``engine-throughput`` — simulated events per wall-clock second;
* ``observer-overhead`` — the validation hook layer's price in its three
  modes (unobserved / no-op observer / armed invariants);
* ``telemetry-overhead`` — the telemetry layer's price in its four arming
  modes (disabled / disarmed / metrics / traced), with the idle cost
  pinned near zero;
* ``figure1`` … ``figure8`` — regeneration of each paper figure, with the
  paper-shape checks of :mod:`repro.bench.figure_checks` asserted inline;
* ``large-session`` — the fast-path flagship: metrics/codec stages timed
  in-process against their pinned reference implementations;
* ``sharded-session`` — the conservative time-window runner vs the scalar
  oracle: identity-gated event counts and delivery checksums, wall-clock
  reported as trend info;
* ``wire`` — the compact cross-shard wire format vs pickled batches on
  captured real traffic: bytes per datagram (gated, must stay >= 2x
  smaller) and encode/decode time;
* ``sweep-parallel`` — serial vs multiprocess sweep identity and speedup.

Gating policy (see :mod:`repro.bench.spec`): deterministic counters (events
dispatched, figure-table checksums, headline curve values) and in-process
speedup ratios gate the CI comparison; wall-clock rates are recorded as
trend information only, because this class of 1-core shared runner cannot
time anything reproducibly.
"""

from __future__ import annotations

import hashlib
import random
import time
from pathlib import Path

from repro.bench.baseline import default_baseline_root
from repro.bench.figure_checks import FIGURE_CHECKS, FigureCheckSkipped
from repro.bench.spec import Benchmark, BenchContext, Metric, default_registry
from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, SessionResult, StreamingSession
from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.network.transport import NetworkConfig
from repro.streaming.schedule import StreamConfig

# ----------------------------------------------------------------------
# engine-throughput
# ----------------------------------------------------------------------
#: (num_nodes, num_windows) per scale; unknown scales use the reduced size.
ENGINE_SIZES = {
    "smoke": (20, 6),
    "reduced": (40, 30),
    "paper": (60, 40),
    "xlarge": (80, 40),
}


def throughput_config(num_nodes: int = 40, num_windows: int = 30, seed: int = 99) -> SessionConfig:
    """A mid-sized, congestion-free session dominated by engine work."""
    return SessionConfig(
        num_nodes=num_nodes,
        seed=seed,
        gossip=GossipConfig(fanout=7, refresh_every=1, retransmit_timeout=2.0),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=num_windows,
        ),
        network=NetworkConfig(upload_cap_kbps=700.0, max_backlog_seconds=10.0),
        extra_time=20.0,
    )


def run_once(config: SessionConfig) -> SessionResult:
    """Run one session to completion (the benchmarked unit of work)."""
    return StreamingSession(config).run()


def _engine_size(ctx: BenchContext) -> tuple:
    default_nodes, default_windows = ENGINE_SIZES.get(ctx.scale_name, ENGINE_SIZES["reduced"])
    return (
        ctx.option_int("nodes", default_nodes),
        ctx.option_int("windows", default_windows),
    )


def _warmup_session(ctx: BenchContext) -> None:
    run_once(throughput_config(num_nodes=15, num_windows=4))


def run_engine_throughput(ctx: BenchContext) -> dict:
    num_nodes, num_windows = _engine_size(ctx)
    config = throughput_config(num_nodes=num_nodes, num_windows=num_windows)
    started = time.perf_counter()
    result = run_once(config)
    elapsed = time.perf_counter() - started
    rate = result.events_processed / elapsed if elapsed > 0 else 0.0
    ctx.log(f"    {result.events_processed:,} events in {elapsed:.2f}s -> {rate:,.0f} events/s")
    return {
        "events_processed": float(result.events_processed),
        "delivery_ratio": result.delivery_ratio(),
        "events_per_second": rate,
    }


# ----------------------------------------------------------------------
# observer-overhead
# ----------------------------------------------------------------------
OBSERVER_MODES = ("unobserved", "noop", "invariants")


def run_observed_session(num_nodes: int, num_windows: int, mode: str) -> tuple:
    """One full session in the given observation mode; (events, seconds)."""
    from repro.validation import InvariantSuite, SessionObserver, attach_session_observer

    session = StreamingSession(throughput_config(num_nodes=num_nodes, num_windows=num_windows))
    session.build()
    suite = None
    if mode == "noop":
        attach_session_observer(session, SessionObserver())
    elif mode == "invariants":
        suite = InvariantSuite.default().attach(session)
    started = time.perf_counter()
    result = session.run()
    if suite is not None:
        suite.finalize(result)
    elapsed = time.perf_counter() - started
    return result.events_processed, elapsed


def run_observer_overhead(ctx: BenchContext) -> dict:
    num_nodes, num_windows = _engine_size(ctx)
    rates = {}
    events_by_mode = {}
    for mode in OBSERVER_MODES:
        events, elapsed = run_observed_session(num_nodes, num_windows, mode)
        rates[mode] = events / elapsed if elapsed > 0 else 0.0
        events_by_mode[mode] = events
        ctx.log(f"    {mode:12s} {rates[mode]:>10,.0f} events/s")
    if len(set(events_by_mode.values())) != 1:
        raise AssertionError(
            f"observer modes changed the event trace: {events_by_mode} "
            "(observers must be pure)"
        )
    noop_overhead = rates["unobserved"] / rates["noop"] - 1.0 if rates["noop"] else 0.0
    invariant_overhead = (
        rates["unobserved"] / rates["invariants"] - 1.0 if rates["invariants"] else 0.0
    )
    ctx.log(
        f"    overhead: no-op observer {noop_overhead:+.1%}, "
        f"armed invariants {invariant_overhead:+.1%}"
    )
    return {
        "events_processed": float(events_by_mode["unobserved"]),
        "unobserved_events_per_second": rates["unobserved"],
        "noop_events_per_second": rates["noop"],
        "invariants_events_per_second": rates["invariants"],
        "noop_overhead": noop_overhead,
        "invariant_overhead": invariant_overhead,
    }


# ----------------------------------------------------------------------
# telemetry-overhead
# ----------------------------------------------------------------------
TELEMETRY_MODES = ("disabled", "disarmed", "metrics", "traced")


def run_telemetry_session(num_nodes: int, num_windows: int, mode: str, trace_dir) -> tuple:
    """One full session in the given telemetry mode; (result, seconds)."""
    import dataclasses

    from repro.telemetry.config import TelemetryConfig

    telemetry = {
        "disabled": None,
        "disarmed": TelemetryConfig(metrics=False),
        "metrics": TelemetryConfig(metrics=True),
        "traced": TelemetryConfig(
            metrics=True, trace_path=str(Path(trace_dir) / f"bench_{mode}.jsonl")
        ),
    }[mode]
    config = dataclasses.replace(
        throughput_config(num_nodes=num_nodes, num_windows=num_windows),
        telemetry=telemetry,
    )
    started = time.perf_counter()
    result = run_once(config)
    elapsed = time.perf_counter() - started
    return result, elapsed


def run_telemetry_overhead(ctx: BenchContext) -> dict:
    """The telemetry layer's price in its four arming modes.

    ``disabled`` (no config) and ``disarmed`` (config present, nothing
    armed) must both ride the host-keeps-``None`` fast path, so their
    overhead is the idle cost of merely *having* the layer — pinned near
    zero.  ``metrics`` and ``traced`` record what arming actually costs.
    """
    import tempfile

    num_nodes, num_windows = _engine_size(ctx)
    rates = {}
    events_by_mode = {}
    trace_events = 0
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as trace_dir:
        for mode in TELEMETRY_MODES:
            result, elapsed = run_telemetry_session(num_nodes, num_windows, mode, trace_dir)
            rates[mode] = result.events_processed / elapsed if elapsed > 0 else 0.0
            events_by_mode[mode] = result.events_processed
            if mode == "traced":
                trace_events = result.telemetry.trace_events
            ctx.log(f"    {mode:12s} {rates[mode]:>10,.0f} events/s")
    if len(set(events_by_mode.values())) != 1:
        raise AssertionError(
            f"telemetry modes changed the event trace: {events_by_mode} "
            "(telemetry must be pure observation)"
        )

    def overhead(mode: str) -> float:
        return rates["disabled"] / rates[mode] - 1.0 if rates[mode] else 0.0

    ctx.log(
        f"    overhead: disarmed {overhead('disarmed'):+.1%}, "
        f"metrics {overhead('metrics'):+.1%}, traced {overhead('traced'):+.1%} "
        f"({trace_events:,} trace events)"
    )
    return {
        "events_processed": float(events_by_mode["disabled"]),
        "trace_events": float(trace_events),
        "disabled_events_per_second": rates["disabled"],
        "disarmed_events_per_second": rates["disarmed"],
        "metrics_events_per_second": rates["metrics"],
        "traced_events_per_second": rates["traced"],
        "idle_overhead": overhead("disarmed"),
        "metrics_overhead": overhead("metrics"),
        "trace_overhead": overhead("traced"),
    }


# ----------------------------------------------------------------------
# figure1 … figure8
# ----------------------------------------------------------------------
def _results_dir() -> Path:
    """``benchmarks/results/`` of the repo (generated, git-ignored)."""
    return default_baseline_root().parent / "results"


def write_figure_table(result: FigureResult) -> str:
    """Persist a figure's table under ``benchmarks/results/``; return the table.

    The single writer of the ``<figure>_<scale>.txt`` artifacts — both the
    unified runner and the pytest shims' ``record_figure`` fixture go
    through it.  Best-effort: on a read-only checkout the table is still
    returned, just not persisted (it is a convenience artifact only).
    """
    table = result.to_table()
    try:
        directory = _results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{result.figure_id}_{result.scale_name}.txt"
        path.write_text(table + "\n", encoding="utf-8")
    except OSError:
        pass
    return table


def _table_checksum(table: str) -> float:
    """First 48 bits of the table's SHA-256 as an exactly-representable float."""
    return float(int(hashlib.sha256(table.encode("utf-8")).hexdigest()[:12], 16))


#: headline metric per figure: (label of the series, x accessor, unit).
def _figure_headline(figure_id: str, result: FigureResult, scale) -> float:
    if figure_id == "figure1":
        return result.series_by_label("offline viewing").y_at(float(scale.optimal_fanout))
    if figure_id == "figure2":
        series = result.series_by_label(f"fanout {scale.optimal_fanout}")
        return series.y_at(max(scale.fig2_lag_grid))
    if figure_id == "figure3":
        cap = max(scale.fig3_caps_kbps)
        series = result.series_by_label(f"offline viewing, {cap:.0f}kbps cap")
        return series.y_at(float(max(scale.fanout_grid)))
    if figure_id == "figure4":
        return max(series.max_y() for series in result.series)
    if figure_id in ("figure5", "figure6"):
        return result.series_by_label("offline viewing").y_at(1.0)
    if figure_id == "figure7":
        return result.series_by_label("20s lag, X=1").y_at(min(scale.churn_grid) * 100.0)
    if figure_id == "figure8":
        series = result.series_by_label("20s lag, X=1")
        return sum(series.ys()) / len(series.ys())
    raise KeyError(f"no headline metric defined for {figure_id!r}")


def run_figure(figure_id: str, ctx: BenchContext) -> dict:
    """Regenerate one figure, assert its paper shape, digest its table."""
    scale = ctx.scale
    cache = ctx.summary_cache()
    generator = ALL_FIGURES[figure_id]
    result = generator(scale, cache)
    write_figure_table(result)
    checks_run = 1.0
    try:
        FIGURE_CHECKS[figure_id](result, scale, cache)
    except FigureCheckSkipped as skip:
        checks_run = 0.0
        ctx.log(f"    shape checks skipped: {skip}")
    return {
        "points": float(sum(len(series.points) for series in result.series)),
        "series": float(len(result.series)),
        "table_checksum": _table_checksum(result.to_table()),
        "headline": _figure_headline(figure_id, result, scale),
        "checks_run": checks_run,
    }


def _figure_benchmark(figure_id: str, description: str, drop_cache_after: bool) -> Benchmark:
    def run(ctx: BenchContext, figure_id=figure_id) -> dict:
        return run_figure(figure_id, ctx)

    return Benchmark(
        name=figure_id,
        description=description,
        run=run,
        tags=("figure", "paper"),
        metrics=(
            Metric("points", kind="identity", unit="points"),
            Metric("series", kind="identity", unit="series"),
            Metric("table_checksum", kind="identity"),
            Metric("headline", kind="counter", unit="% / kbps"),
            Metric("checks_run", kind="identity"),
        ),
        drop_cache_after=drop_cache_after,
    )


# ----------------------------------------------------------------------
# large-session (fast path vs pinned references)
# ----------------------------------------------------------------------
#: (num_nodes, num_windows, codec_windows) per scale; None = scenario default.
#: The smoke codec stage keeps 4 windows on purpose: the gated speedup
#: ratios need timed intervals well above scheduler-noise scale (tens of
#: milliseconds), and the session itself — not the stages — dominates cost.
LARGE_SESSION_SIZES = {
    "smoke": (100, 4, 4),
    "reduced": (150, 8, 4),
}


def run_large_session_stage(spec) -> tuple:
    """Run the large-session scenario; returns (result, session metrics)."""
    from repro.scenarios.builder import run_spec

    started = time.perf_counter()
    result = run_spec(spec)
    wall = time.perf_counter() - started
    events_per_second = result.events_processed / wall if wall > 0 else 0.0
    return result, {
        "wall_seconds": wall,
        "events_per_second": events_per_second,
    }


def measure_metrics_stage(result) -> dict:
    """Fast quality analyzer vs the pinned reference, same session data."""
    from repro.experiments.scale import XLARGE
    from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
    from repro.metrics.reference import ReferenceQualityAnalyzer

    viewing_lags = (10.0, 20.0, OFFLINE_LAG)
    window_lags = (20.0,)
    lag_cdf_grid = XLARGE.fig2_lag_grid

    def extract(analyzer) -> dict:
        return {
            "viewing": [analyzer.viewing_ratio(lag) for lag in viewing_lags],
            "complete": [analyzer.average_complete_window_ratio(lag) for lag in window_lags],
            "lag_cdf": analyzer.lag_cdf(lag_cdf_grid),
        }

    schedule, deliveries = result.schedule, result.deliveries
    nodes = result.survivors()

    started = time.perf_counter()
    fast_curves = extract(StreamQualityAnalyzer(schedule, deliveries, nodes))
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference_curves = extract(ReferenceQualityAnalyzer(schedule, deliveries, nodes))
    reference_seconds = time.perf_counter() - started

    if fast_curves != reference_curves:
        raise AssertionError("fast metrics stage diverged from the reference implementation")
    return {"fast_seconds": fast_seconds, "reference_seconds": reference_seconds}


def measure_codec_stage(stream: StreamConfig, windows_timed: int, seed: int = 7) -> dict:
    """Encode + max-erasure decode of real-geometry windows, bulk vs scalar."""
    from repro.streaming.fec import ReedSolomonCode, reference_decode, reference_encode

    rng = random.Random(seed)
    code = ReedSolomonCode(stream.source_packets_per_window, stream.fec_packets_per_window)
    window_payloads = [
        [
            bytes(rng.randrange(256) for _ in range(stream.payload_bytes))
            for _ in range(stream.source_packets_per_window)
        ]
        for _ in range(windows_timed)
    ]
    erasures = [
        set(rng.sample(range(code.total_shards), code.parity_shards))
        for _ in range(windows_timed)
    ]

    def erase(codeword, erased):
        return {i: s for i, s in enumerate(codeword) if i not in erased}

    started = time.perf_counter()
    fast_out = []
    for data, erased in zip(window_payloads, erasures):
        codeword = list(data) + code.encode(data)
        fast_out.append(code.decode(erase(codeword, erased)))
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference_out = []
    for data, erased in zip(window_payloads, erasures):
        codeword = list(data) + reference_encode(code, data)
        reference_out.append(reference_decode(code, erase(codeword, erased)))
    reference_seconds = time.perf_counter() - started

    if fast_out != reference_out or any(
        out != data for out, data in zip(fast_out, window_payloads)
    ):
        raise AssertionError("bulk codec diverged from the scalar reference implementation")
    return {"fast_seconds": fast_seconds, "reference_seconds": reference_seconds}


def run_large_session(ctx: BenchContext) -> dict:
    from repro.scenarios import build_scenario

    default_nodes, default_windows, default_codec = LARGE_SESSION_SIZES.get(
        ctx.scale_name, (None, None, 4)
    )
    num_nodes = ctx.option_int("nodes", default_nodes)
    num_windows = ctx.option_int("windows", default_windows)
    codec_windows = ctx.option_int("codec_windows", default_codec)

    overrides = {}
    if num_nodes is not None:
        overrides["num_nodes"] = num_nodes
    if num_windows is not None:
        overrides["stream"] = StreamConfig.paper_defaults(num_windows=num_windows)
    spec = build_scenario("large-session", **overrides)
    ctx.log(f"    session: {spec.describe()}")

    result, session = run_large_session_stage(spec)
    ctx.log(
        f"    {result.events_processed:,} events in {session['wall_seconds']:.1f}s "
        f"-> {session['events_per_second']:,.0f} events/s"
    )
    metrics_stage = measure_metrics_stage(result)
    codec_stage = measure_codec_stage(spec.stream, codec_windows)

    def speedup(stage: dict) -> float:
        return stage["reference_seconds"] / stage["fast_seconds"] if stage["fast_seconds"] else 0.0

    fast_total = metrics_stage["fast_seconds"] + codec_stage["fast_seconds"]
    reference_total = metrics_stage["reference_seconds"] + codec_stage["reference_seconds"]
    combined = reference_total / fast_total if fast_total > 0 else 0.0
    ctx.log(
        f"    speedups vs references: metrics {speedup(metrics_stage):.1f}x, "
        f"codec {speedup(codec_stage):.1f}x, combined {combined:.1f}x (identical results)"
    )
    return {
        "events_processed": float(result.events_processed),
        "delivery_ratio": result.delivery_ratio(),
        "events_per_second": session["events_per_second"],
        "metrics_speedup": speedup(metrics_stage),
        "codec_speedup": speedup(codec_stage),
        "combined_stage_speedup": combined,
        "identical_results": 1.0,
    }


# ----------------------------------------------------------------------
# sharded-session
# ----------------------------------------------------------------------
#: (num_nodes, num_windows) per scale.  The metropolis scale runs the
#: registered scenario at full size — nightly territory, not CI's.
SHARDED_SESSION_SIZES = {
    "smoke": (30, 4),
    "reduced": (60, 6),
    "metropolis": (None, None),
}


def _delivery_checksum(result) -> float:
    """First 48 bits of a SHA-256 over every (node, packet, time) delivery.

    The strongest identity the gate can pin: two runs agree on this float
    only if every delivery of every packet at every node landed at the
    bit-identical instant.
    """
    digest = hashlib.sha256()
    deliveries = result.deliveries.raw()
    for node_id in sorted(deliveries):
        for packet_id in sorted(deliveries[node_id]):
            digest.update(
                f"{node_id}:{packet_id}:{deliveries[node_id][packet_id]!r};".encode("ascii")
            )
    return float(int(digest.hexdigest()[:12], 16))


def run_sharded_session(ctx: BenchContext) -> dict:
    """The sharded runner vs the scalar oracle: identity gated, time reported.

    Identity metrics (event count, delivery checksum) gate CI: the sharded
    run must be byte-identical to the scalar run of the same config.
    Wall-clock numbers are info-only — on the 1-core CI runner the window
    protocol is pure overhead and the "speedup" is expected to be *below*
    one (see docs/performance.md).
    """
    from repro.scenarios import build_scenario
    from repro.scenarios.builder import SessionBuilder
    from repro.shard import run_sharded
    from repro.shard.wire import WIRE_STATS

    default_nodes, default_windows = SHARDED_SESSION_SIZES.get(
        ctx.scale_name, SHARDED_SESSION_SIZES["reduced"]
    )
    num_nodes = ctx.option_int("nodes", default_nodes)
    num_windows = ctx.option_int("windows", default_windows)
    shards = ctx.option_int("shards", 2)
    mode = ctx.options.get("mode", "thread")
    wire = ctx.options.get("wire", "compact")

    overrides = {"shards": shards}
    if num_nodes is not None:
        overrides["num_nodes"] = num_nodes
    if num_windows is not None:
        overrides["stream"] = StreamConfig.paper_defaults(num_windows=num_windows)
    spec = build_scenario("metropolis", **overrides)
    config = SessionBuilder.from_spec(spec).to_config()
    ctx.log(f"    session: {spec.describe()} ({shards} shards, {mode} mode, {wire} wire)")

    WIRE_STATS.reset()
    started = time.perf_counter()
    sharded = run_sharded(config, mode=mode, wire=wire)
    sharded_seconds = time.perf_counter() - started
    # Thread-mode routers all report into this process's accumulator;
    # process-mode workers accumulate in their own processes, so the parent
    # legitimately reads zeros there (and the metrics are info-kind).
    wire_stats = WIRE_STATS.snapshot()
    ctx.log(
        f"    sharded: {sharded.events_processed:,} events in {sharded_seconds:.2f}s"
    )
    if wire_stats["windows"]:
        ctx.log(
            f"    wire   : {wire_stats['wire_bytes']:,}B across "
            f"{wire_stats['windows']} window flushes "
            f"({wire_stats['datagrams']:,} cross-shard datagrams)"
        )

    # The scalar oracle doubles the benchmark's cost, so the full-size
    # metropolis leg skips it by default (``--option oracle=1`` forces it).
    run_oracle = bool(ctx.option_int("oracle", 0 if config.num_nodes > 1000 else 1))
    metrics = {
        "events_processed": float(sharded.events_processed),
        "delivery_checksum": _delivery_checksum(sharded),
        "delivery_ratio": sharded.delivery_ratio(),
        "shards": float(shards),
        "sharded_wall_seconds": sharded_seconds,
        "oracle_checked": 1.0 if run_oracle else 0.0,
        "scalar_wall_seconds": 0.0,
        "sharded_speedup": 0.0,
        "wire_windows": float(wire_stats["windows"]),
        "wire_datagrams": float(wire_stats["datagrams"]),
        "wire_bytes": float(wire_stats["wire_bytes"]),
        "wire_bytes_per_window": (
            wire_stats["wire_bytes"] / wire_stats["windows"]
            if wire_stats["windows"]
            else 0.0
        ),
    }
    if run_oracle:
        started = time.perf_counter()
        oracle = StreamingSession(config).run()
        oracle_seconds = time.perf_counter() - started
        if (
            oracle.events_processed != sharded.events_processed
            or _delivery_checksum(oracle) != metrics["delivery_checksum"]
        ):
            raise AssertionError(
                "sharded run diverged from the scalar oracle "
                f"(events {sharded.events_processed} vs {oracle.events_processed})"
            )
        speedup = oracle_seconds / sharded_seconds if sharded_seconds > 0 else 0.0
        ctx.log(
            f"    scalar : {oracle.events_processed:,} events in {oracle_seconds:.2f}s "
            f"-> sharded speedup {speedup:.2f}x (identical results)"
        )
        metrics["scalar_wall_seconds"] = oracle_seconds
        metrics["sharded_speedup"] = speedup
    return metrics


# ----------------------------------------------------------------------
# wire
# ----------------------------------------------------------------------
#: (num_nodes, num_windows) per scale for the traffic-capture session.
WIRE_SIZES = {
    "smoke": (30, 4),
    "reduced": (60, 6),
}


def run_wire(ctx: BenchContext) -> dict:
    """Compact wire format vs pickled batches, on real cross-shard traffic.

    A scalar session runs with a *tap* router that schedules every delivery
    unchanged but records each datagram whose sender and receiver fall on
    different sides of a 2-shard partition, grouped into lookahead-sized
    windows per source shard — the batches a real shard run would flush.
    The capture is then encoded and decoded in-process: serialized bytes
    per datagram against pickling the legacy tuple batches (the acceptance
    bar is at least 2x fewer), plus encode/decode time per datagram.  All
    byte counts are deterministic; only the timings are wall-clock.
    """
    import pickle
    from collections import defaultdict

    from repro.network.transport import DatagramRouter
    from repro.scenarios import build_scenario
    from repro.scenarios.builder import SessionBuilder
    from repro.shard.partition import shard_lookup
    from repro.shard.session import conservative_lookahead
    from repro.shard.wire import decode_batch, encode_batch

    default_nodes, default_windows = WIRE_SIZES.get(ctx.scale_name, WIRE_SIZES["reduced"])
    num_nodes = ctx.option_int("nodes", default_nodes)
    num_windows = ctx.option_int("windows", default_windows)
    shards = ctx.option_int("shards", 2)
    repeats = ctx.option_int("repeats", 5)

    spec = build_scenario(
        "metropolis",
        num_nodes=num_nodes,
        shards=shards,
        stream=StreamConfig.paper_defaults(num_windows=num_windows),
    )
    config = SessionBuilder.from_spec(spec).to_config()
    lookup = shard_lookup(config.num_nodes, shards)
    lookahead = conservative_lookahead(config)

    class _TapRouter(DatagramRouter):
        """Schedules locally like no router at all; records cross-shard traffic."""

        def __init__(self, network) -> None:
            self._network = network
            self._seq = 0
            self.captured = []

        def dispatch(self, message, deliver_time) -> None:
            self._network.schedule_delivery(message, deliver_time)
            if lookup[message.sender] != lookup[message.receiver]:
                self._seq += 1
                self.captured.append((deliver_time, message.sender, self._seq, message))

    class _TapSession(StreamingSession):
        def _build_network(self) -> None:
            super()._build_network()
            self.tap = _TapRouter(self.network)
            self.network.set_router(self.tap)

    session = _TapSession(config)
    session.run()
    captured = session.tap.captured
    if not captured:
        raise AssertionError("tap session produced no cross-shard traffic")

    windows = defaultdict(list)
    for routed in captured:
        windows[(int(routed[0] // lookahead), lookup[routed[1]])].append(routed)
    batches = [windows[key] for key in sorted(windows)]
    ctx.log(
        f"    capture: {len(captured):,} cross-shard datagrams in "
        f"{len(batches)} window batches ({spec.describe()})"
    )

    encoded = [encode_batch(batch) for batch in batches]
    for batch, packed in zip(batches, encoded):
        if decode_batch(packed) != batch:
            raise AssertionError("wire round-trip diverged from the captured batch")
    compact_bytes = sum(packed.nbytes for packed in encoded)
    pickle_bytes = sum(
        len(pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)) for batch in batches
    )
    ratio = pickle_bytes / compact_bytes
    if ratio < 2.0:
        raise AssertionError(
            f"compact wire format too fat: {compact_bytes}B vs {pickle_bytes}B "
            f"pickled ({ratio:.2f}x, need >= 2x)"
        )

    encode_best = decode_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for batch in batches:
            encode_batch(batch)
        encode_best = min(encode_best, time.perf_counter() - started)
        started = time.perf_counter()
        for packed in encoded:
            decode_batch(packed)
        decode_best = min(decode_best, time.perf_counter() - started)
    per_datagram = 1e9 / len(captured)
    ctx.log(
        f"    bytes  : compact {compact_bytes / len(captured):.1f}B/datagram vs "
        f"pickle {pickle_bytes / len(captured):.1f}B -> {ratio:.2f}x smaller"
    )
    ctx.log(
        f"    time   : encode {encode_best * per_datagram:.0f}ns/datagram, "
        f"decode {decode_best * per_datagram:.0f}ns/datagram"
    )
    return {
        "datagrams": float(len(captured)),
        "windows": float(len(batches)),
        "roundtrip_exact": 1.0,
        "compact_bytes": float(compact_bytes),
        "pickle_bytes": float(pickle_bytes),
        "compact_bytes_per_datagram": compact_bytes / len(captured),
        "bytes_ratio": ratio,
        "encode_ns_per_datagram": encode_best * per_datagram,
        "decode_ns_per_datagram": decode_best * per_datagram,
    }


# ----------------------------------------------------------------------
# sweep-parallel
# ----------------------------------------------------------------------
def run_sweep_parallel(ctx: BenchContext) -> dict:
    from repro.sweep import (
        ParallelExecutor,
        SerialExecutor,
        SweepGrid,
        SweepSpec,
        aggregate,
        aggregate_table,
        run_sweep,
    )

    jobs = ctx.option_int("jobs", 2)
    scale = ctx.scale
    fanouts = tuple(scale.fanout_grid[:6])
    spec = SweepSpec(
        name="bench-sweep-parallel",
        scale_name=ctx.scale_name,
        grid=SweepGrid(fanouts=fanouts, caps_kbps=(None, 2000.0)),
        replicas=1,
    )
    tasks = spec.expand()
    ctx.log(f"    sweep: {len(tasks)} points at scale {ctx.scale_name!r}, {jobs} workers")

    started = time.perf_counter()
    serial = run_sweep(scale, tasks, executor=SerialExecutor())
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(scale, tasks, executor=ParallelExecutor(jobs=jobs))
    parallel_seconds = time.perf_counter() - started

    if serial.results != parallel.results:
        raise AssertionError("parallel sweep results differ from the serial ones")
    if aggregate_table(aggregate(serial.results)) != aggregate_table(
        aggregate(parallel.results)
    ):
        raise AssertionError("parallel aggregate table differs from the serial one")

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    ctx.log(
        f"    serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s "
        f"-> {speedup:.2f}x (identical results)"
    )
    return {
        "points": float(len(tasks)),
        "jobs": float(jobs),
        "identical_results": 1.0,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
    }


# ----------------------------------------------------------------------
# Registration (order = execution order of a full run)
# ----------------------------------------------------------------------
def register_all(registry=None) -> None:
    """Register the full suite (idempotence is the caller's concern)."""
    registry = registry if registry is not None else default_registry()

    registry.register(
        Benchmark(
            name="engine-throughput",
            description="simulated events per wall-clock second of a full session",
            run=run_engine_throughput,
            warmup=_warmup_session,
            tags=("engine", "throughput"),
            repeats=3,
            smoke_repeats=2,
            metrics=(
                Metric("events_processed", kind="identity", unit="events"),
                Metric("delivery_ratio", kind="identity"),
                Metric("events_per_second", kind="rate", unit="events/s"),
            ),
        )
    )
    registry.register(
        Benchmark(
            name="observer-overhead",
            description="validation hook layer cost: unobserved vs no-op vs armed invariants",
            run=run_observer_overhead,
            warmup=_warmup_session,
            tags=("engine", "observer", "validation"),
            repeats=3,
            smoke_repeats=1,
            metrics=(
                Metric("events_processed", kind="identity", unit="events"),
                Metric("unobserved_events_per_second", kind="rate", unit="events/s"),
                Metric("noop_events_per_second", kind="rate", unit="events/s"),
                Metric("invariants_events_per_second", kind="rate", unit="events/s"),
                Metric("noop_overhead", kind="rate", higher_is_better=False),
                Metric("invariant_overhead", kind="rate", higher_is_better=False),
            ),
        )
    )

    registry.register(
        Benchmark(
            name="telemetry-overhead",
            description="telemetry layer cost: disabled vs disarmed vs metrics vs traced",
            run=run_telemetry_overhead,
            warmup=_warmup_session,
            tags=("engine", "telemetry", "observability"),
            repeats=3,
            smoke_repeats=1,
            metrics=(
                Metric("events_processed", kind="identity", unit="events"),
                Metric("trace_events", kind="identity", unit="events"),
                Metric("disabled_events_per_second", kind="rate", unit="events/s"),
                Metric("disarmed_events_per_second", kind="rate", unit="events/s"),
                Metric("metrics_events_per_second", kind="rate", unit="events/s"),
                Metric("traced_events_per_second", kind="rate", unit="events/s"),
                Metric("idle_overhead", kind="rate", higher_is_better=False),
                Metric("metrics_overhead", kind="rate", higher_is_better=False),
                Metric("trace_overhead", kind="rate", higher_is_better=False),
            ),
        )
    )

    figure_descriptions = {
        "figure1": "viewing % vs fanout at 700 kbps (bell with optimal plateau)",
        "figure2": "cumulative distribution of stream lag per fanout",
        "figure3": "fanout sweep under relaxed 1000/2000 kbps caps",
        "figure4": "distribution of per-node upload bandwidth usage",
        "figure5": "viewing % vs view refresh rate X",
        "figure6": "viewing % vs feed-me request rate Y (static mesh)",
        "figure7": "% of survivors unaffected by catastrophic churn",
        "figure8": "average % of complete windows for survivors vs churn",
    }
    # Cache clears mirror the old pytest module boundaries: figures that
    # share runs (1+2, 7+8) stay grouped; the boundary figure drops them.
    cache_boundaries = {"figure2", "figure4", "figure5", "figure6", "figure8"}
    for figure_id, description in figure_descriptions.items():
        registry.register(
            _figure_benchmark(figure_id, description, figure_id in cache_boundaries)
        )

    registry.register(
        Benchmark(
            name="large-session",
            description="fast-path flagship: metrics/codec stages vs pinned references",
            run=run_large_session,
            tags=("fastpath", "codec", "metrics", "scale"),
            # Stage timings are sub-millisecond at smoke sizes; best-of-2
            # keeps one scheduler hiccup from skewing a gated ratio.  The
            # full-size run stays single-shot (minutes per repetition).
            smoke_repeats=2,
            metrics=(
                Metric("events_processed", kind="identity", unit="events"),
                Metric("delivery_ratio", kind="identity"),
                Metric("events_per_second", kind="rate", unit="events/s"),
                Metric("metrics_speedup", kind="ratio", tolerance=0.7, unit="x"),
                Metric("codec_speedup", kind="ratio", tolerance=0.6, unit="x"),
                Metric("combined_stage_speedup", kind="ratio", tolerance=0.6, unit="x"),
                Metric("identical_results", kind="identity"),
            ),
        )
    )
    registry.register(
        Benchmark(
            name="sharded-session",
            description="conservative time-window shards vs the scalar oracle",
            run=run_sharded_session,
            tags=("shard", "parallel", "scale"),
            metrics=(
                Metric("events_processed", kind="identity", unit="events"),
                Metric("delivery_checksum", kind="identity"),
                Metric("delivery_ratio", kind="identity"),
                Metric("oracle_checked", kind="identity"),
                Metric("shards", kind="info"),
                Metric("sharded_wall_seconds", kind="rate", higher_is_better=False, unit="s"),
                Metric("scalar_wall_seconds", kind="rate", higher_is_better=False, unit="s"),
                Metric("sharded_speedup", kind="rate", unit="x"),
                # Wire traffic is info-kind: thread-mode routers report into
                # this process, process-mode workers keep their own counters
                # (the parent legitimately reads zeros there).
                Metric("wire_windows", kind="info", unit="windows"),
                Metric("wire_datagrams", kind="info", unit="datagrams"),
                Metric("wire_bytes", kind="info", higher_is_better=False, unit="B"),
                Metric("wire_bytes_per_window", kind="info", higher_is_better=False, unit="B"),
            ),
        )
    )
    registry.register(
        Benchmark(
            name="wire",
            description="compact cross-shard wire format vs pickled batches",
            run=run_wire,
            tags=("shard", "wire", "serialization"),
            smoke_repeats=2,
            metrics=(
                Metric("datagrams", kind="identity", unit="datagrams"),
                Metric("windows", kind="identity", unit="windows"),
                Metric("roundtrip_exact", kind="identity"),
                Metric("compact_bytes", kind="counter", higher_is_better=False, unit="B"),
                Metric("pickle_bytes", kind="info", unit="B"),
                Metric(
                    "compact_bytes_per_datagram",
                    kind="counter",
                    higher_is_better=False,
                    unit="B",
                ),
                Metric("bytes_ratio", kind="ratio", tolerance=0.4, unit="x"),
                Metric(
                    "encode_ns_per_datagram", kind="rate", higher_is_better=False, unit="ns"
                ),
                Metric(
                    "decode_ns_per_datagram", kind="rate", higher_is_better=False, unit="ns"
                ),
            ),
        )
    )
    registry.register(
        Benchmark(
            name="sweep-parallel",
            description="serial vs multiprocess sweep: identical results + speedup",
            run=run_sweep_parallel,
            tags=("sweep", "parallel"),
            metrics=(
                Metric("points", kind="identity", unit="points"),
                Metric("jobs", kind="info"),
                Metric("identical_results", kind="identity"),
                Metric("serial_seconds", kind="rate", higher_is_better=False, unit="s"),
                Metric("parallel_seconds", kind="rate", higher_is_better=False, unit="s"),
                Metric("speedup", kind="rate", unit="x"),
            ),
        )
    )


register_all()
