"""Executes registered benchmarks and assembles the unified report.

The harness owns the warmup/repeat policy so individual benchmarks only
measure once: a benchmark's ``run`` is called ``repeats_for(scale)`` times
and the per-repeat metric dicts are combined per the metric spec —

* ``identity`` and ``counter`` metrics must be **identical** across repeats
  (they are deterministic by contract; a drifting counter is a real bug and
  fails the run immediately rather than producing a lying report);
* every other kind keeps its best value (max when higher is better, min
  otherwise) — the classic best-of-N defence against one-off scheduler
  noise on a busy runner.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.bench.report import BenchmarkRecord, BenchReport, current_fingerprint
from repro.bench.spec import Benchmark, BenchContext, BenchmarkRegistry

DEFAULT_PROFILE_DIR = "benchmarks/results"
"""Where ``run --profile`` drops its per-benchmark pstats files."""

PROFILE_SORTS = ("cumulative", "tottime")
"""Sort keys ``--profile-sort`` accepts for the inline hot-path summary."""

PROFILE_TOP_LINES = 12
"""How many pstats rows the inline summary prints per benchmark."""


class BenchmarkRunError(RuntimeError):
    """A benchmark violated its own declared contract while running."""


class BenchmarkSelectionError(KeyError):
    """No registered benchmark matches the requested filter."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable
        return self.args[0] if self.args else "no benchmark selected"


def _combine_repeats(benchmark: Benchmark, repeats: List[Mapping[str, float]]) -> Dict[str, float]:
    """Fold per-repeat metric dicts into one record per the metric specs."""
    declared = {metric.name for metric in benchmark.metrics}
    combined: Dict[str, float] = {}
    for index, sample in enumerate(repeats):
        extra = set(sample) - declared
        if extra:
            raise BenchmarkRunError(
                f"benchmark {benchmark.name!r} reported undeclared metrics: {sorted(extra)}"
            )
        missing = declared - set(sample)
        if missing:
            raise BenchmarkRunError(
                f"benchmark {benchmark.name!r} repeat {index} omitted metrics: {sorted(missing)}"
            )
    for metric in benchmark.metrics:
        values = [float(sample[metric.name]) for sample in repeats]
        if metric.kind in ("identity", "counter"):
            if any(value != values[0] for value in values[1:]):
                raise BenchmarkRunError(
                    f"deterministic metric {benchmark.name}:{metric.name} varied across "
                    f"repeats: {values}"
                )
            combined[metric.name] = values[0]
        elif metric.higher_is_better:
            combined[metric.name] = max(values)
        else:
            combined[metric.name] = min(values)
    return combined


def run_benchmark(
    benchmark: Benchmark,
    ctx: BenchContext,
    profile_dir: Optional[str] = None,
    profile_sort: str = "cumulative",
) -> BenchmarkRecord:
    """Warm up, repeat, combine: one benchmark to one record.

    With ``profile_dir`` set, the timed repetitions (warmup excluded) run
    under :mod:`cProfile` and the stats are written to
    ``<profile_dir>/PROFILE_<name>.pstats`` — load them with
    ``pstats.Stats`` or ``snakeviz`` to find the hot path.  The dump path
    and a short hot-path summary (top rows sorted by ``profile_sort``)
    are printed unconditionally, ``--quiet`` included: a profiling run's
    whole point is that output.  Profiling slows the run, so the record's
    timed metrics are not comparable to unprofiled baselines; gate runs
    never profile.
    """
    if profile_sort not in PROFILE_SORTS:
        raise BenchmarkRunError(
            f"unknown profile sort {profile_sort!r}; expected one of {PROFILE_SORTS}"
        )
    repeats = benchmark.repeats_for(ctx.scale_name)
    if repeats < 1:
        raise BenchmarkRunError(f"benchmark {benchmark.name!r} requests {repeats} repeats")
    if benchmark.warmup is not None:
        benchmark.warmup(ctx)
    samples: List[Mapping[str, float]] = []
    profiler = cProfile.Profile() if profile_dir is not None else None
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    for _ in range(repeats):
        samples.append(dict(benchmark.run(ctx)))
    if profiler is not None:
        profiler.disable()
    wall_seconds = time.perf_counter() - started
    if profiler is not None:
        directory = Path(profile_dir)
        directory.mkdir(parents=True, exist_ok=True)
        stats_path = directory / f"PROFILE_{benchmark.name}.pstats"
        profiler.dump_stats(stats_path)
        print(f"    profile written to {stats_path}")
        stats = pstats.Stats(profiler)
        stats.sort_stats(profile_sort).print_stats(PROFILE_TOP_LINES)
    record = BenchmarkRecord(
        benchmark=benchmark.name,
        metrics=_combine_repeats(benchmark, samples),
        repeats=repeats,
        wall_seconds=wall_seconds,
    )
    if benchmark.drop_cache_after and ctx.cache is not None:
        ctx.cache.clear()
    return record


def run_selected(
    registry: BenchmarkRegistry,
    patterns: Sequence[str] = (),
    scale_name: str = "smoke",
    options: Optional[Dict[str, str]] = None,
    repeats_override: Optional[int] = None,
    verbose: bool = True,
    profile_dir: Optional[str] = None,
    profile_sort: str = "cumulative",
) -> BenchReport:
    """Run every benchmark matching ``patterns`` and build one report."""
    selected = registry.select(patterns)
    if not selected:
        raise BenchmarkSelectionError(
            f"no benchmark matches {list(patterns)!r}; registered: {', '.join(registry.names())}"
        )
    ctx = BenchContext(scale_name=scale_name, options=dict(options or {}), verbose=verbose)
    report = BenchReport(scale=scale_name, fingerprint=current_fingerprint())
    for benchmark in selected:
        runnable = benchmark
        if repeats_override is not None:
            from repro.bench.spec import scaled

            runnable = scaled(benchmark, repeats=repeats_override, smoke_repeats=repeats_override)
        ctx.log(f"[{runnable.name}] {runnable.description} (scale={scale_name})")
        record = run_benchmark(
            runnable, ctx, profile_dir=profile_dir, profile_sort=profile_sort
        )
        for name in sorted(record.metrics):
            ctx.log(f"    {name} = {record.metrics[name]:,.6g}")
        ctx.log(f"    ({record.repeats} repeat(s), {record.wall_seconds:.2f}s)")
        report.results.append(record)
    return report
