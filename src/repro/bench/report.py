"""The versioned JSON report every benchmark run produces.

One schema for everything: the combined ``python -m repro.bench run --json``
artifact, the per-benchmark baseline files under ``benchmarks/baselines/``,
and the legacy shims' ``--json`` flags all write the same shape, so any
report can be compared against any baseline.

Schema (``"repro.bench/1"``)::

    {
      "schema": "repro.bench/1",
      "scale": "smoke",
      "fingerprint": "<repro.sweep code fingerprint>",
      "host": {"cpu_count": 1, "platform": "...", "python": "3.11.7"},
      "results": [
        {"benchmark": "engine-throughput",
         "repeats": 2,
         "wall_seconds": 3.21,
         "metrics": {"events_processed": 23176.0, ...}},
        ...
      ]
    }

``fingerprint`` reuses :func:`repro.sweep.code_fingerprint` — the same hash
that keys the sweep result store — so a report always says which code
produced it.  Comparison never *requires* fingerprint equality (a baseline
necessarily predates the code it gates), but the verdict records staleness.
``host`` carries hints for interpreting wall-clock numbers; nothing in the
comparison logic reads it.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA = "repro.bench/1"


class ReportError(ValueError):
    """A report file does not conform to the schema."""


def host_hints() -> Dict[str, object]:
    """Context for interpreting the wall-clock numbers of a report."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


@dataclass
class BenchmarkRecord:
    """One benchmark's combined measurement within a report."""

    benchmark: str
    metrics: Dict[str, float]
    repeats: int = 1
    wall_seconds: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "repeats": self.repeats,
            "wall_seconds": round(self.wall_seconds, 3),
            "metrics": {name: value for name, value in sorted(self.metrics.items())},
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "BenchmarkRecord":
        try:
            return cls(
                benchmark=str(data["benchmark"]),
                repeats=int(data["repeats"]),
                wall_seconds=float(data["wall_seconds"]),
                metrics={str(k): float(v) for k, v in data["metrics"].items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReportError(f"malformed benchmark record: {exc}") from exc


@dataclass
class BenchReport:
    """A full report: run context plus one record per executed benchmark."""

    scale: str
    fingerprint: str
    results: List[BenchmarkRecord] = field(default_factory=list)
    host: Dict[str, object] = field(default_factory=host_hints)

    def record_for(self, benchmark: str) -> Optional[BenchmarkRecord]:
        """The record of one benchmark, or ``None`` when absent."""
        for record in self.results:
            if record.benchmark == benchmark:
                return record
        return None

    def single(self) -> BenchmarkRecord:
        """The sole record of a per-benchmark (baseline) report."""
        if len(self.results) != 1:
            raise ReportError(
                f"expected a single-benchmark report, found {len(self.results)} records"
            )
        return self.results[0]

    def to_json_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "scale": self.scale,
            "fingerprint": self.fingerprint,
            "host": self.host,
            "results": [record.to_json_dict() for record in self.results],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "BenchReport":
        if not isinstance(data, dict):
            raise ReportError(f"report must be a JSON object, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ReportError(f"unsupported report schema {schema!r}; this code reads {SCHEMA!r}")
        try:
            scale = str(data["scale"])
            fingerprint = str(data["fingerprint"])
            host = dict(data.get("host", {}))
            raw_results = data["results"]
        except (KeyError, TypeError) as exc:
            raise ReportError(f"malformed report: {exc}") from exc
        if not isinstance(raw_results, list):
            raise ReportError("report 'results' must be a list")
        results = [BenchmarkRecord.from_json_dict(item) for item in raw_results]
        return cls(scale=scale, fingerprint=fingerprint, results=results, host=host)

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def write(self, path) -> Path:
        """Write the report as pretty JSON (parents created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path) -> "BenchReport":
        """Read and validate a report file."""
        source = Path(path)
        try:
            data = json.loads(source.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ReportError(f"no report at {source}") from None
        except json.JSONDecodeError as exc:
            raise ReportError(f"{source} is not valid JSON: {exc}") from exc
        return cls.from_json_dict(data)


def current_fingerprint() -> str:
    """The running code's fingerprint (reused from :mod:`repro.sweep`)."""
    from repro.sweep.store import code_fingerprint

    return code_fingerprint()
