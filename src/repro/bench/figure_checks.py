"""Paper-shape assertions for every figure benchmark.

These checks used to live inline in the eight ``benchmarks/bench_fig*.py``
pytest modules; they now live here so the same assertions guard both entry
points — the legacy pytest shims *and* ``python -m repro.bench run``.  Each
``check_figureN(result, scale, cache)`` raises :class:`AssertionError` with
a readable message when the regenerated figure loses the shape the paper
reports, or :class:`FigureCheckSkipped` when the scale cannot express the
check at all.

The scale-awareness story (PR 3) is unchanged: the congestion-collapse
regime on the right edge of Figures 1 and 2 only exists where the upload
caps saturate (``scale.fanout_collapse_expected``); at the 30-node smoke
scale the contrapositive is asserted instead — the curve must *stay high*
at the largest fanout.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, figure5_refresh_rate
from repro.experiments.scale import ExperimentScale

#: The X = ∞ / Y = ∞ sentinel used on the numeric axes of Figures 5–8.
STATIC_X = -1.0


class FigureCheckSkipped(Exception):
    """The scale cannot express this check (the shims turn it into a skip)."""


def check_figure1(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """Bell shape: rising left edge, high plateau, scale-aware right edge."""
    offline = result.series_by_label("offline viewing")
    ten_second = result.series_by_label("10s lag")
    optimal = float(scale.optimal_fanout)
    smallest = float(min(scale.fanout_grid))
    largest = float(max(scale.fanout_grid))

    # Shape check 1: the optimal fanout serves (almost) everyone.
    assert offline.y_at(optimal) >= 90.0, (
        f"figure1: offline viewing at the optimal fanout dropped to {offline.y_at(optimal):.1f}%"
    )
    # Shape check 2: the smallest fanout is clearly worse than the optimum.
    assert ten_second.y_at(smallest) < ten_second.y_at(optimal), (
        "figure1: the smallest fanout no longer underperforms the optimum"
    )
    if scale.fanout_collapse_expected:
        # Shape check 3: the largest fanout collapses for real-time lags.
        assert ten_second.y_at(largest) < ten_second.y_at(optimal) - 30.0, (
            "figure1: the congestion-collapse regime at oversized fanouts disappeared"
        )
    else:
        # No collapse regime at this scale: the caps never saturate, so the
        # largest fanout must be at least as good as the optimum.
        assert ten_second.y_at(largest) >= ten_second.y_at(optimal), (
            "figure1: the largest fanout underperforms at a scale without collapse"
        )


def check_figure2(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """Every series a proper CDF; the optimal fanout reaches everyone fast."""
    largest_lag = max(scale.fig2_lag_grid)
    optimal_label = f"fanout {scale.optimal_fanout}"
    try:
        optimal_series = result.series_by_label(optimal_label)
    except KeyError:
        raise FigureCheckSkipped(
            f"scale {scale.name!r} does not plot the optimal fanout in figure 2"
        ) from None

    # Every series is a CDF: monotone, bounded by 100.
    for series in result.series:
        ys = series.ys()
        assert all(later >= earlier - 1e-9 for earlier, later in zip(ys, ys[1:])), (
            f"figure2: series {series.label!r} is not monotone"
        )
        assert all(0.0 <= y <= 100.0 for y in ys), (
            f"figure2: series {series.label!r} leaves the [0, 100] range"
        )

    # The optimal fanout reaches (almost) everyone within the plotted lags.
    assert optimal_series.y_at(largest_lag) >= 90.0, (
        f"figure2: the optimal fanout only reaches {optimal_series.y_at(largest_lag):.1f}%"
    )
    largest_fanout = max(scale.fig2_fanouts)
    oversized_series = result.series_by_label(f"fanout {largest_fanout}")
    if scale.fanout_collapse_expected:
        # ... and does so faster than the largest fanout in the plot.
        mid_lag = scale.fig2_lag_grid[len(scale.fig2_lag_grid) // 3]
        assert optimal_series.y_at(mid_lag) >= oversized_series.y_at(mid_lag), (
            "figure2: the optimal fanout no longer beats the oversized one mid-CDF"
        )
    else:
        # No collapse regime at this scale: the largest fanout also serves
        # (almost) everyone within the plotted lags.
        assert oversized_series.y_at(largest_lag) >= 90.0, (
            "figure2: the largest fanout fails at a scale without collapse"
        )


def check_figure3(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """Looser caps widen the good-fanout region."""
    largest = float(max(scale.fanout_grid))
    loosest_cap = max(scale.fig3_caps_kbps)
    loose_offline = result.series_by_label(f"offline viewing, {loosest_cap:.0f}kbps cap")
    loose_ten = result.series_by_label(f"10s lag, {loosest_cap:.0f}kbps cap")

    # With plenty of headroom the largest fanout still performs well offline.
    assert loose_offline.y_at(largest) >= 70.0, (
        f"figure3: the loosest cap no longer carries the largest fanout "
        f"({loose_offline.y_at(largest):.1f}%)"
    )
    # And the optimal fanout is excellent at every cap.
    optimal = float(scale.optimal_fanout)
    for series in result.series:
        assert series.y_at(optimal) >= 80.0, (
            f"figure3: series {series.label!r} is poor at the optimal fanout"
        )
    # 10 s-lag viewing never exceeds offline viewing.
    for fanout in loose_ten.xs():
        assert loose_ten.y_at(fanout) <= loose_offline.y_at(fanout) + 1e-9, (
            "figure3: 10s-lag viewing exceeds offline viewing"
        )


def check_figure4(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """Sorted contributions under the cap; heterogeneous even when capped."""
    for series in result.series:
        ys = series.ys()
        # Sorted by contribution, largest first.
        assert all(earlier >= later - 1e-9 for earlier, later in zip(ys, ys[1:])), (
            f"figure4: series {series.label!r} is not sorted by contribution"
        )
        cap = float(series.label.rsplit(",", 1)[1].replace("kbps cap", "").strip())
        # Usage is averaged over the whole run, so the throttling limiter
        # keeps every node at (or marginally below) its configured cap.
        assert max(ys) <= cap * 1.05, (
            f"figure4: series {series.label!r} exceeds its upload cap"
        )
        # Heterogeneity: the top contributor clearly outworks the median.
        median = ys[len(ys) // 2]
        if median > 0:
            assert ys[0] >= median, (
                f"figure4: series {series.label!r} lost its contribution spread"
            )


def check_figure5(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """X = 1 is best; a fully static mesh is clearly worse."""
    offline = result.series_by_label("offline viewing")
    ten_second = result.series_by_label("10s lag")

    # X = 1 is (one of) the best settings; the static mesh is clearly worse.
    assert offline.y_at(1.0) >= offline.max_y() - 10.0, (
        "figure5: X = 1 is no longer among the best refresh rates"
    )
    assert offline.y_at(1.0) > offline.y_at(STATIC_X) + 20.0, (
        "figure5: the static mesh stopped being clearly worse than X = 1"
    )
    # The decline is steepest for the shortest lag (the paper's observation
    # that the 10 s-lag curve has the most negative slope).
    drop_offline = offline.y_at(1.0) - offline.y_at(STATIC_X)
    drop_ten = ten_second.y_at(1.0) - ten_second.y_at(STATIC_X)
    assert drop_ten >= drop_offline - 1e-9, (
        "figure5: the 10s-lag curve no longer declines fastest"
    )


def check_figure6(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """Feed-me helps a static mesh but never beats plain X = 1."""
    offline = result.series_by_label("offline viewing")

    # Some feed-me rate improves on (or at least matches) the fully static
    # mesh; in the congestion regime the paper's stronger claim holds —
    # even *frequent* requests help.  At the 30-node smoke scale a static
    # mesh is already well connected and Y = 1 adds load for nothing, so
    # only the weaker form is asserted there.
    enabled_best = max(y for x, y in offline.points if x != STATIC_X)
    assert enabled_best >= offline.y_at(STATIC_X) - 1e-9, (
        "figure6: no feed-me rate improves on the fully static mesh"
    )
    if scale.fanout_collapse_expected:
        assert offline.y_at(1.0) >= offline.y_at(STATIC_X) - 1e-9, (
            "figure6: frequent feed-me requests stopped helping the static mesh"
        )

    # ...but do not beat plain X = 1 (compare against the Figure 5 baseline,
    # re-run here through the cache-backed generator at a single point).
    baseline = figure5_refresh_rate(scale, cache, refresh_values=(1,))
    x1_offline = baseline.series_by_label("offline viewing").y_at(1.0)
    # "does not provide any improvement over standard gossip": allow a small
    # tolerance since a single node flipping state moves these percentages
    # by a couple of points at reduced scales.
    assert x1_offline >= offline.max_y() - 10.0, (
        "figure6: the feed-me mechanism now beats plain X = 1 gossip"
    )


def check_figure7(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """A dynamic mesh keeps the most survivors unaffected by churn."""
    smallest_churn = min(scale.churn_grid) * 100.0
    largest_churn = max(scale.churn_grid) * 100.0
    dynamic_20s = result.series_by_label("20s lag, X=1")
    static_20s = result.series_by_label("20s lag, X=inf")

    # A dynamic mesh keeps a sizeable fraction of survivors fully unaffected
    # at light churn, and beats the static mesh there.
    assert dynamic_20s.y_at(smallest_churn) >= 40.0, (
        f"figure7: only {dynamic_20s.y_at(smallest_churn):.1f}% of survivors "
        f"unaffected at light churn"
    )
    assert dynamic_20s.y_at(smallest_churn) >= static_20s.y_at(smallest_churn), (
        "figure7: the dynamic mesh no longer beats the static one at light churn"
    )
    # Heavier churn leaves fewer nodes untouched than light churn.
    assert dynamic_20s.y_at(largest_churn) <= dynamic_20s.y_at(smallest_churn) + 1e-9, (
        "figure7: heavy churn leaves more nodes untouched than light churn"
    )


def check_figure8(result: FigureResult, scale: ExperimentScale, cache=None) -> None:
    """X = 1 survivors keep decoding ≥ 85 % of windows under moderate churn."""
    dynamic = result.series_by_label("20s lag, X=1")
    static = result.series_by_label("20s lag, X=inf")
    moderate_churn = [x for x in dynamic.xs() if x <= 50.0]

    # X = 1 keeps survivors above 85 % complete windows for moderate churn.
    for churn in moderate_churn:
        assert dynamic.y_at(churn) >= 85.0, (
            f"figure8: survivors decode only {dynamic.y_at(churn):.1f}% of windows "
            f"at {churn:.0f}% churn"
        )
    # And outperforms the fully static mesh on average (the gap is wide at
    # the reduced/paper scales and narrower at the smoke scale, where a
    # 30-node static graph is still fairly well connected).
    dynamic_mean = sum(dynamic.ys()) / len(dynamic.ys())
    static_mean = sum(static.ys()) / len(static.ys())
    assert dynamic_mean > static_mean, (
        "figure8: the dynamic mesh no longer outperforms the static one on average"
    )


FIGURE_CHECKS = {
    "figure1": check_figure1,
    "figure2": check_figure2,
    "figure3": check_figure3,
    "figure4": check_figure4,
    "figure5": check_figure5,
    "figure6": check_figure6,
    "figure7": check_figure7,
    "figure8": check_figure8,
}
"""Check function per figure id (consumed by the suite and the pytest shims)."""
