"""Declarative scenarios: named experiment shapes built through one funnel.

The scenario layer separates *what an experiment looks like* (a
:class:`ScenarioSpec`: protocol, swarm size, capacity mix, churn, joins,
loss) from *how a session is wired* (:class:`SessionBuilder`), and gives the
common shapes names::

    from repro.scenarios import available_scenarios, run_scenario

    print(available_scenarios())
    result = run_scenario("heterogeneous-bandwidth", num_nodes=60, seed=3)
    print(result.viewing_percentage(lag=10.0))

Custom scenarios are plain spec factories::

    from repro.scenarios import ScenarioSpec, register_scenario

    @register_scenario
    def tiny_lan() -> ScenarioSpec:
        return ScenarioSpec(name="tiny-lan", num_nodes=10,
                            latency_model="constant", random_loss=0.0)
"""

from repro.scenarios.builder import SessionBuilder, build_session, run_spec
from repro.scenarios.registry import (
    available_scenarios,
    build_scenario,
    register_scenario,
    run_scenario,
    scenario_by_name,
    scenario_session,
)
from repro.scenarios.spec import BandwidthClass, ScenarioSpec, assign_bandwidth_classes

__all__ = [
    "BandwidthClass",
    "ScenarioSpec",
    "SessionBuilder",
    "assign_bandwidth_classes",
    "available_scenarios",
    "build_scenario",
    "build_session",
    "register_scenario",
    "run_scenario",
    "run_spec",
    "scenario_by_name",
    "scenario_session",
]
