"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a flat, serializable description of one
experiment shape: how many nodes, which dissemination protocol, what the
stream looks like, how the network behaves, and which perturbations (churn,
flash crowds, bandwidth classes) apply.  It deliberately stays at a higher
altitude than :class:`~repro.core.session.SessionConfig`: a spec names
*intents* ("30 % strong peers at 2 Mbps", "half the audience joins at
t = 8 s") and :class:`~repro.scenarios.builder.SessionBuilder` compiles them
into the concrete per-node wiring.

Specs are frozen dataclasses, so variations are cheap::

    from dataclasses import replace

    base = scenario_by_name("homogeneous")()
    big = replace(base, num_nodes=230, seed=9)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.config import GossipConfig
from repro.membership.churn import ChurnSchedule
from repro.membership.join import JoinSchedule
from repro.membership.partners import INFINITE
from repro.network.message import NodeId
from repro.streaming.schedule import StreamConfig
from repro.telemetry.config import TelemetryConfig


@dataclass(frozen=True)
class BandwidthClass:
    """One capacity class of a heterogeneous swarm.

    ``fraction`` of the receivers get ``cap_kbps`` of upload.  Classes are
    assigned deterministically by interleaving node ids (cycle of 10), so a
    30 % class maps to ``node_id % 10 < 3`` — independent of churn or join
    ordering.
    """

    fraction: float
    cap_kbps: Optional[float]

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"class fraction must be in (0, 1], got {self.fraction!r}")
        if self.cap_kbps is not None and self.cap_kbps <= 0.0:
            raise ValueError(f"cap_kbps must be positive or None, got {self.cap_kbps!r}")


def assign_bandwidth_classes(
    classes: Tuple[BandwidthClass, ...],
    receiver_ids: Tuple[NodeId, ...],
) -> Dict[NodeId, Optional[float]]:
    """Deterministic per-node caps for a tuple of bandwidth classes.

    Receivers are mapped onto classes through a cycle of 10 positions split
    by cumulative fraction, interleaving strong and weak nodes across the id
    space.  Fractions must sum to 1 and be multiples of 0.1 — the cycle
    cannot represent finer splits, and silently quantizing a requested
    25/75 mix to 30/70 would corrupt capacity-sweep experiments.
    """
    total = sum(cls.fraction for cls in classes)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"bandwidth class fractions must sum to 1, got {total!r}")
    cycle = 10
    thresholds = []
    cumulative = 0.0
    for cls in classes:
        if abs(cls.fraction * cycle - round(cls.fraction * cycle)) > 1e-9:
            raise ValueError(
                f"class fractions must be multiples of {1 / cycle} (assignment "
                f"cycles through {cycle} id slots), got {cls.fraction!r}"
            )
        cumulative += cls.fraction
        thresholds.append((round(cumulative * cycle), cls.cap_kbps))
    caps: Dict[NodeId, Optional[float]] = {}
    for node_id in receiver_ids:
        slot = node_id % cycle
        # Fractions sum to 1, so the last threshold is exactly ``cycle`` and
        # every slot in 0..cycle-1 matches some class.
        for limit, cap in thresholds:
            if slot < limit:
                caps[node_id] = cap
                break
    return caps


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, declarative experiment shape.

    Attributes
    ----------
    name / description:
        Identification; the registry keys scenarios by ``name``.
    num_nodes / seed:
        System size (including the source) and root seed.
    protocol:
        Dissemination protocol name (see :mod:`repro.protocols.registry`).
    fanout / gossip_period / refresh_every / feed_me_every /
    retransmit_timeout / max_request_attempts / source_fanout:
        Protocol knobs, compiled into a :class:`GossipConfig`.
    stream:
        Stream layout; defaults to the scaled-down test stream.
    upload_cap_kbps / max_backlog_seconds / latency_model / base_latency /
    random_loss:
        Network substrate knobs, compiled into a ``NetworkConfig``.
    bandwidth_classes:
        Optional heterogeneous capacity classes (fractions summing to 1);
        compiled into per-node caps.
    churn / join:
        Optional perturbation schedules.
    source_uncapped / failure_detection_delay / extra_time:
        Session-level knobs, forwarded verbatim.
    telemetry:
        Optional :class:`~repro.telemetry.config.TelemetryConfig`, forwarded
        verbatim; ``None`` (the default) builds no telemetry objects.
    shards:
        Optional shard count, forwarded verbatim to
        :attr:`~repro.core.session.SessionConfig.shards`.  ``None`` (the
        default) runs the classic scalar session; ``k >= 1`` runs the
        scenario through the conservative time-window runner
        (:mod:`repro.shard`) with placement-invariant per-sender RNG.
    """

    name: str
    description: str = ""
    num_nodes: int = 40
    seed: int = 1
    protocol: str = "three-phase"
    fanout: int = 7
    gossip_period: float = 0.2
    refresh_every: float = 1
    feed_me_every: float = INFINITE
    retransmit_timeout: float = 2.0
    max_request_attempts: int = 2
    source_fanout: int = 7
    stream: StreamConfig = field(default_factory=StreamConfig.scaled_down)
    upload_cap_kbps: Optional[float] = 700.0
    max_backlog_seconds: float = 10.0
    latency_model: str = "per-node"
    base_latency: float = 0.05
    random_loss: float = 0.01
    bandwidth_classes: Tuple[BandwidthClass, ...] = ()
    churn: Optional[ChurnSchedule] = None
    join: Optional[JoinSchedule] = None
    source_uncapped: bool = True
    failure_detection_delay: float = 5.0
    extra_time: float = 30.0
    telemetry: Optional[TelemetryConfig] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.num_nodes < 2:
            raise ValueError(f"a scenario needs at least 2 nodes, got {self.num_nodes!r}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1 (or None), got {self.shards!r}")
        # A perturbation scheduled past the stream's last packet is inert:
        # churn no longer disturbs dissemination and joiners receive nothing
        # (gossip is not a catch-up protocol).  This bites in practice when a
        # caller overrides the stream of a registered scenario without also
        # moving the churn/join time, so fail fast at spec level.  Because
        # ``with_overrides`` goes through ``dataclasses.replace``, overridden
        # specs are re-validated here too.
        for label, schedule in (("churn", self.churn), ("join", self.join)):
            if schedule is None:
                continue
            start = getattr(schedule, "time", None)
            if start is None:
                start = getattr(schedule, "start", None)
            if start is not None and start >= self.stream.end_time:
                raise ValueError(
                    f"{label} schedule starts at t={start:.2f}s but the stream's "
                    f"last packet is published at t={self.stream.end_time:.2f}s, "
                    f"making the perturbation inert; override the {label} time "
                    f"together with the stream"
                )

    # ------------------------------------------------------------------
    # Compilation helpers
    # ------------------------------------------------------------------
    def gossip_config(self) -> GossipConfig:
        """The protocol knobs as a :class:`GossipConfig`."""
        return GossipConfig(
            fanout=self.fanout,
            gossip_period=self.gossip_period,
            refresh_every=self.refresh_every,
            feed_me_every=self.feed_me_every,
            retransmit_timeout=self.retransmit_timeout,
            max_request_attempts=self.max_request_attempts,
            source_fanout=self.source_fanout,
        )

    def per_node_caps(self) -> Dict[NodeId, Optional[float]]:
        """Per-node upload caps implied by the bandwidth classes (or empty)."""
        if not self.bandwidth_classes:
            return {}
        receivers = tuple(range(1, self.num_nodes))
        return assign_bandwidth_classes(self.bandwidth_classes, receivers)

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable description."""
        parts = [
            f"{self.num_nodes} nodes",
            f"protocol={self.protocol}",
            f"fanout={self.fanout}",
        ]
        if self.bandwidth_classes:
            classes = "/".join(
                f"{cls.fraction:.0%}@{'inf' if cls.cap_kbps is None else int(cls.cap_kbps)}"
                for cls in self.bandwidth_classes
            )
            parts.append(f"caps={classes}")
        elif self.upload_cap_kbps is not None:
            parts.append(f"cap={self.upload_cap_kbps:.0f}kbps")
        else:
            parts.append("uncapped")
        if self.random_loss > 0.0:
            parts.append(f"loss={self.random_loss:.0%}")
        if self.churn is not None:
            parts.append(self.churn.describe())
        if self.join is not None:
            parts.append(self.join.describe())
        return f"{self.name}: " + ", ".join(parts)
