"""SessionBuilder: compile declarative specs into runnable sessions.

The builder is the single place where scenario intents become concrete
session wiring.  Every layer above the core — the scenario registry, the
experiment scales, the examples — composes sessions through it, so adding a
new knob means touching the builder once instead of every harness.

Three entry points cover the common shapes::

    # from a declarative spec
    result = SessionBuilder.from_spec(spec).run()

    # fluent, for one-off experiments
    result = (SessionBuilder()
              .nodes(60).seed(3).protocol("eager-push")
              .gossip(fanout=8)
              .network(upload_cap_kbps=None, random_loss=0.0)
              .run())

    # wrapping an existing SessionConfig (experiment harness)
    session = SessionBuilder.from_config(config).build()

Internally the builder keeps an optional *base* :class:`SessionConfig` plus
a dictionary of field overrides, and compiles with ``dataclasses.replace``.
That shape is deliberate: ``from_config`` round-trips a config it never
decomposes, so a field added to :class:`SessionConfig` in a future PR flows
through untouched instead of being silently reset to its default.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, SessionResult, StreamingSession
from repro.membership.churn import ChurnSchedule
from repro.membership.join import JoinSchedule
from repro.network.message import NodeId
from repro.network.transport import NetworkConfig
from repro.streaming.schedule import StreamConfig
from repro.telemetry.config import TelemetryConfig

from repro.scenarios.spec import ScenarioSpec


class SessionBuilder:
    """Composes a :class:`SessionConfig` and builds the session from it.

    Parameters
    ----------
    base:
        Optional existing configuration to start from; fluent setters then
        override individual fields.  ``None`` starts from the
        :class:`SessionConfig` defaults.
    """

    def __init__(self, base: Optional[SessionConfig] = None) -> None:
        self._base = base
        self._overrides: Dict[str, Any] = {}
        self._per_node_caps: Dict[NodeId, Optional[float]] = {}

    def _effective(self, field_name: str, default: Any) -> Any:
        if field_name in self._overrides:
            return self._overrides[field_name]
        if self._base is not None:
            return getattr(self._base, field_name)
        return default

    # ------------------------------------------------------------------
    # Fluent setters
    # ------------------------------------------------------------------
    def nodes(self, num_nodes: int) -> "SessionBuilder":
        """System size, including the source."""
        self._overrides["num_nodes"] = num_nodes
        return self

    def seed(self, seed: int) -> "SessionBuilder":
        """Root seed of the session."""
        self._overrides["seed"] = seed
        return self

    def protocol(self, name: str) -> "SessionBuilder":
        """Dissemination protocol name (``three-phase`` / ``eager-push``)."""
        self._overrides["protocol"] = name
        return self

    def gossip(self, config: Optional[GossipConfig] = None, **knobs) -> "SessionBuilder":
        """Set the gossip config, or tweak knobs of the current one."""
        base = config if config is not None else self._effective("gossip", GossipConfig())
        self._overrides["gossip"] = replace(base, **knobs) if knobs else base
        return self

    def stream(self, config: StreamConfig) -> "SessionBuilder":
        """Set the stream layout."""
        self._overrides["stream"] = config
        return self

    def network(self, config: Optional[NetworkConfig] = None, **knobs) -> "SessionBuilder":
        """Set the network config, or tweak knobs of the current one."""
        base = config if config is not None else self._effective("network", NetworkConfig())
        self._overrides["network"] = replace(base, **knobs) if knobs else base
        return self

    def per_node_caps(self, caps: Dict[NodeId, Optional[float]]) -> "SessionBuilder":
        """Heterogeneous upload caps (overrides the default for listed nodes)."""
        self._per_node_caps = dict(caps)
        return self

    def churn(self, schedule: Optional[ChurnSchedule]) -> "SessionBuilder":
        """Churn schedule (``None`` disables churn)."""
        self._overrides["churn"] = schedule
        return self

    def join(self, schedule: Optional[JoinSchedule]) -> "SessionBuilder":
        """Join schedule (``None``: everybody is present from the start)."""
        self._overrides["join"] = schedule
        return self

    def source_uncapped(self, uncapped: bool) -> "SessionBuilder":
        """Whether the source's upload is unlimited."""
        self._overrides["source_uncapped"] = uncapped
        return self

    def failure_detection_delay(self, seconds: float) -> "SessionBuilder":
        """Seconds before crashed nodes stop being selected as partners."""
        self._overrides["failure_detection_delay"] = seconds
        return self

    def extra_time(self, seconds: float) -> "SessionBuilder":
        """Drain time after the last packet is published."""
        self._overrides["extra_time"] = seconds
        return self

    def telemetry(self, config: Optional[TelemetryConfig]) -> "SessionBuilder":
        """Telemetry config (``None``: no telemetry objects are built)."""
        self._overrides["telemetry"] = config
        return self

    def shards(self, count: Optional[int]) -> "SessionBuilder":
        """Shard count (``None``: classic scalar execution).

        Any ``count >= 1`` arms the placement-invariant per-sender RNG mode
        and makes :meth:`run` execute through the conservative time-window
        runner (:mod:`repro.shard`).
        """
        self._overrides["shards"] = count
        return self

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def to_config(self) -> SessionConfig:
        """Compile the base config plus the accumulated overrides."""
        overrides = dict(self._overrides)
        if self._per_node_caps:
            network = overrides.get(
                "network",
                self._base.network if self._base is not None else NetworkConfig(),
            )
            merged = dict(network.per_node_caps_kbps)
            merged.update(self._per_node_caps)
            overrides["network"] = replace(network, per_node_caps_kbps=merged)
        if self._base is not None:
            return replace(self._base, **overrides) if overrides else self._base
        return SessionConfig(**overrides)

    def build(self) -> StreamingSession:
        """A ready-to-run (but not yet built) :class:`StreamingSession`."""
        return StreamingSession(self.to_config())

    def run(self) -> SessionResult:
        """Run the composed session to completion.

        Routed through :func:`~repro.core.session.run_session` so a config
        carrying ``shards`` executes on the sharded runner; shard-less
        configs take the exact scalar path :meth:`build` exposes.
        """
        from repro.core.session import run_session

        return run_session(self.to_config())

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "SessionBuilder":
        """Compile a declarative :class:`ScenarioSpec` into a builder."""
        builder = cls()
        builder.nodes(spec.num_nodes).seed(spec.seed).protocol(spec.protocol)
        builder.gossip(spec.gossip_config())
        builder.stream(spec.stream)
        builder.network(
            NetworkConfig(
                upload_cap_kbps=spec.upload_cap_kbps,
                max_backlog_seconds=spec.max_backlog_seconds,
                latency_model=spec.latency_model,
                base_latency=spec.base_latency,
                random_loss=spec.random_loss,
            )
        )
        caps = spec.per_node_caps()
        if caps:
            builder.per_node_caps(caps)
        builder.churn(spec.churn)
        builder.join(spec.join)
        builder.source_uncapped(spec.source_uncapped)
        builder.failure_detection_delay(spec.failure_detection_delay)
        builder.extra_time(spec.extra_time)
        builder.telemetry(spec.telemetry)
        builder.shards(spec.shards)
        return builder

    @classmethod
    def from_config(cls, config: SessionConfig) -> "SessionBuilder":
        """Wrap an already-assembled :class:`SessionConfig`.

        The config is carried whole, never decomposed: with no further
        setter calls, :meth:`to_config` returns it unchanged (every field,
        including ones added after this builder was written).
        """
        return cls(base=config)


def build_session(spec: ScenarioSpec) -> StreamingSession:
    """One-liner: spec → unbuilt session."""
    return SessionBuilder.from_spec(spec).build()


def run_spec(spec: ScenarioSpec) -> SessionResult:
    """One-liner: spec → completed result."""
    return SessionBuilder.from_spec(spec).run()
