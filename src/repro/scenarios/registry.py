"""The scenario registry: named experiment shapes, one decorator away.

Every entry is a factory producing a :class:`ScenarioSpec`; callers override
any spec field by keyword::

    from repro.scenarios import run_scenario

    result = run_scenario("churn-window", num_nodes=60, seed=5)

Shipped scenarios:

* ``homogeneous`` — the paper's baseline: equal 700 kbps caps everywhere;
* ``heterogeneous-bandwidth`` — a cable/DSL mix (30 % strong at 2 Mbps,
  70 % weak at 500 kbps) where the weak class alone cannot carry the stream;
* ``churn-window`` — a catastrophic failure of half the nodes halfway
  through the stream (Section 4.3 of the paper);
* ``flash-crowd`` — 40 % of the audience joins in one burst halfway
  through the stream;
* ``lossy-wan`` — 5 % random datagram loss over heavy-tailed lognormal
  latencies, leaning on retransmission and FEC;
* ``eager-push`` — the one-phase full-payload baseline protocol.  Note it
  is *not* knob-identical to ``homogeneous``: pushing whole payloads needs
  a bigger cap (2 Mbps) and a smaller fanout (5) to survive at all, which
  is itself the comparison's point — match the knobs explicitly (e.g.
  ``run_scenario("eager-push", fanout=7, upload_cap_kbps=700.0)``) to
  watch the baseline collapse under the paper's provisioning.
* ``large-session`` — the fast-path flagship: 1,000 nodes at the paper's
  exact stream geometry (600 kbps, 101 + 9 packet windows).  This is the
  evaluation size of the wider gossip-dissemination literature (epidemic
  broadcast trees, bandwidth-aware gossip), an order of magnitude past the
  paper's 230-node PlanetLab deployment.  One session is a few minutes of
  single-core simulation; ``benchmarks/bench_large_session.py`` runs it
  with per-stage timings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.session import SessionResult, StreamingSession
from repro.membership.churn import CatastrophicChurn
from repro.membership.join import FlashCrowdJoin
from repro.streaming.schedule import StreamConfig

from repro.scenarios.builder import SessionBuilder
from repro.scenarios.spec import BandwidthClass, ScenarioSpec

ScenarioFactory = Callable[[], ScenarioSpec]

_SCENARIOS: Dict[str, ScenarioFactory] = {}


def register_scenario(
    factory: Optional[ScenarioFactory] = None, *, replace: bool = False
) -> Callable:
    """Register a spec factory under the name of the spec it produces.

    Usable as a bare decorator (``@register_scenario``) or parameterized
    (``@register_scenario(replace=True)``) — the latter for iterating on a
    factory in a notebook or letting a plugin override a shipped scenario.
    Factories (rather than spec instances) keep registration cheap and
    mutation-safe.
    """

    def _register(fn: ScenarioFactory) -> ScenarioFactory:
        spec = fn()
        if spec.name in _SCENARIOS and not replace:
            raise ValueError(f"scenario {spec.name!r} is already registered")
        _SCENARIOS[spec.name] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def scenario_by_name(name: str) -> ScenarioFactory:
    """Look up a scenario factory by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def available_scenarios() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_SCENARIOS)


def build_scenario(name: str, **overrides) -> ScenarioSpec:
    """The named spec with any field overridden by keyword."""
    spec = scenario_by_name(name)()
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


def scenario_session(name: str, **overrides) -> StreamingSession:
    """An unbuilt session for the named scenario."""
    return SessionBuilder.from_spec(build_scenario(name, **overrides)).build()


def run_scenario(name: str, **overrides) -> SessionResult:
    """Build and run the named scenario to completion."""
    return scenario_session(name, **overrides).run()


# ----------------------------------------------------------------------
# Shipped scenarios
# ----------------------------------------------------------------------
@register_scenario
def homogeneous() -> ScenarioSpec:
    """The paper's baseline: every node capped at the same 700 kbps."""
    return ScenarioSpec(
        name="homogeneous",
        description="Equal 700 kbps upload caps, fanout 7, X = 1 (paper baseline).",
    )


@register_scenario
def heterogeneous_bandwidth() -> ScenarioSpec:
    """A cable/DSL capacity mix; the strong class must carry the stream."""
    return ScenarioSpec(
        name="heterogeneous-bandwidth",
        description=(
            "30% strong peers at 2 Mbps, 70% weak peers at 500 kbps; the weak "
            "class alone cannot sustain the 600 kbps stream."
        ),
        bandwidth_classes=(
            BandwidthClass(fraction=0.3, cap_kbps=2000.0),
            BandwidthClass(fraction=0.7, cap_kbps=500.0),
        ),
    )


@register_scenario
def churn_window() -> ScenarioSpec:
    """Catastrophic churn mid-stream (the paper's Section 4.3).

    The failure time is derived from the spec's own stream so the crash
    genuinely lands mid-dissemination; a perturbation scheduled past the
    stream's end would be inert (dissemination already complete).
    """
    stream = StreamConfig.scaled_down(num_windows=40)
    return ScenarioSpec(
        name="churn-window",
        description=(
            "Half of the receivers crash simultaneously halfway through the "
            "stream."
        ),
        stream=stream,
        churn=CatastrophicChurn(time=stream.duration * 0.5, fraction=0.5),
    )


@register_scenario
def flash_crowd() -> ScenarioSpec:
    """A burst of late joiners while the stream is still being published.

    As with ``churn-window``, the join time is derived from the stream so
    the crowd arrives mid-broadcast and actually receives the live tail
    (gossip is not a catch-up protocol: joining after the last packet has
    been proposed yields nothing).
    """
    stream = StreamConfig.scaled_down(num_windows=40)
    return ScenarioSpec(
        name="flash-crowd",
        description=(
            "40% of the receivers join in one burst halfway through the "
            "stream and view its live tail."
        ),
        stream=stream,
        join=FlashCrowdJoin(time=stream.duration * 0.5, fraction=0.4),
    )


@register_scenario
def lossy_wan() -> ScenarioSpec:
    """A lossy wide-area substrate: 5% datagram loss, lognormal latency."""
    return ScenarioSpec(
        name="lossy-wan",
        description=(
            "5% random in-flight loss over heavy-tailed lognormal latencies; "
            "recovery leans on retransmission (K = 3) and FEC."
        ),
        latency_model="lognormal",
        base_latency=0.08,
        random_loss=0.05,
        max_request_attempts=3,
    )


@register_scenario
def eager_push() -> ScenarioSpec:
    """The one-phase eager-push baseline, provisioned so it can survive.

    Deliberately NOT knob-identical to ``homogeneous``: without the
    propose/request phase every duplicate costs a whole packet, so the
    baseline needs a 2 Mbps cap and fanout 5 to deliver the stream at all.
    For a controlled A/B of the *protocols*, override the knobs to match
    (``fanout=7, upload_cap_kbps=700.0``) and watch eager push congest and
    its real-time viewing percentage collapse (offline delivery can still
    recover through the post-stream drain at small scales).
    """
    return ScenarioSpec(
        name="eager-push",
        description=(
            "Full-payload infect-and-die gossip (no propose/request phase), "
            "over-provisioned (2 Mbps, fanout 5) so it survives; under the "
            "paper's 700 kbps / fanout 7 it collapses — that is the point."
        ),
        protocol="eager-push",
        fanout=5,
        upload_cap_kbps=2000.0,
    )


@register_scenario
def large_session() -> ScenarioSpec:
    """The fast-path flagship: 1,000 nodes at the paper's stream geometry.

    Stream ratios are the paper's exact 101 + 9 windows at 600 kbps; only
    the stream *length* (12 windows ≈ 18 s) is trimmed so one session stays
    a few minutes of single-core simulation.  Override ``num_nodes`` or the
    stream to scale further — the spec flows through the same
    :class:`~repro.scenarios.builder.SessionBuilder` funnel as every other
    scenario.
    """
    return ScenarioSpec(
        name="large-session",
        description=(
            "1,000 nodes streaming the paper's 600 kbps / 101+9-window "
            "geometry: the literature's evaluation size, served by the "
            "metrics/codec/event-queue fast path."
        ),
        num_nodes=1000,
        stream=StreamConfig.paper_defaults(num_windows=12),
        max_backlog_seconds=20.0,
        extra_time=60.0,
    )


@register_scenario
def metropolis() -> ScenarioSpec:
    """A 10,000-node metropolis at the paper's stream geometry, sharded.

    Two orders of magnitude past the paper's 230-node deployment — the size
    at which a city-scale live event would lean on gossip dissemination.
    The stream keeps the paper's exact 101 + 9-packet windows at 600 kbps
    but only 6 of them (≈ 9 s of stream): one session is already tens of
    millions of events, and the scenario exists to exercise *scale*, not
    stream length.

    ``shards=4`` makes the sharded runner the default execution path (so
    per-datagram randomness is placement-invariant per-sender); override
    ``shards`` to match the host's cores, or set it to 1 to measure the
    window protocol's overhead against ``run --shards`` parity output.
    Expect a full run to take tens of minutes of CPU — this is the nightly
    benchmark's territory, not the test suite's.
    """
    return ScenarioSpec(
        name="metropolis",
        description=(
            "10,000 nodes streaming the paper's 600 kbps / 101+9-window "
            "geometry across 4 conservative time-window shards."
        ),
        num_nodes=10_000,
        stream=StreamConfig.paper_defaults(num_windows=6),
        max_backlog_seconds=20.0,
        extra_time=60.0,
        shards=4,
    )
