"""Per-session telemetry lifecycle: attach, observe, finalize.

:class:`SessionTelemetry` is what a :class:`~repro.core.session.StreamingSession`
builds when its config carries an armed
:class:`~repro.telemetry.config.TelemetryConfig`.  It owns the session's
:class:`~repro.telemetry.metrics.MetricsRegistry` and (optionally) the
trace writer + recorder, attaches the observers to every substrate, and at
the end of the run folds everything into a small, picklable
:class:`TelemetrySnapshot` stored on the session result.

Collector wiring (snapshot-time, zero hot-path cost):

* ``engine.events_dispatched`` / ``engine.pending_events`` — read from the
  simulator;
* ``net.*`` — :meth:`repro.network.stats.TrafficStats.metrics_view`, the
  unified Figure-4 accounting cells;
* ``proto.*`` — the per-node :class:`~repro.core.node.NodeStats` counters,
  summed (``proto.requests_received``, ``proto.serves_sent``, …);
* ``membership.members`` / ``membership.alive`` — directory census.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import MetricsObserver, TraceRecorder
from repro.telemetry.schema import TraceWriter


@dataclass
class TelemetrySnapshot:
    """What one traced/metered session left behind (small and picklable)."""

    metrics: Dict[str, float] = field(default_factory=dict)
    trace_path: Optional[str] = None
    trace_events: int = 0
    trace_events_by_kind: Dict[str, int] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """One metric by rendered name (raises ``KeyError`` when absent)."""
        return self.metrics[name]


class SessionTelemetry:
    """Builds and owns the telemetry objects of one streaming session."""

    def __init__(self, config: TelemetryConfig) -> None:
        self.config = config
        self.registry: Optional[MetricsRegistry] = None
        self.writer: Optional[TraceWriter] = None
        self._finalized: Optional[TelemetrySnapshot] = None

    def attach(self, session) -> "SessionTelemetry":
        """Wire observers and collectors into a **built** session."""
        from repro.validation.observers import attach_session_observer

        if session.simulator is None or session.network is None:
            raise ValueError(
                "session is not built yet: telemetry attaches to live substrates"
            )
        config = self.config
        if config.metrics:
            registry = MetricsRegistry()
            self.registry = registry
            self._wire_collectors(session, registry)
            attach_session_observer(
                session, MetricsObserver(registry, schedule=session.schedule)
            )
        if config.trace_path is not None:
            self.writer = TraceWriter(
                config.trace_path,
                meta=session_meta(session),
                flush_every=config.flush_every,
            )
            recorder = TraceRecorder(
                self.writer,
                sample_every=config.sample_every,
                include_kinds=config.include_kinds,
                exclude_kinds=config.exclude_kinds,
            )
            attach_session_observer(session, recorder)
        return self

    def _wire_collectors(self, session, registry: MetricsRegistry) -> None:
        simulator = session.simulator
        directory = session.directory
        nodes = session.nodes

        def engine_metrics() -> Dict[str, float]:
            return {
                "engine.events_dispatched": float(simulator.events_processed),
                "engine.pending_events": float(simulator.pending_events),
            }

        def proto_metrics() -> Dict[str, float]:
            totals: Dict[str, int] = {}
            for node in nodes.values():
                for key, value in node.stats.as_dict().items():
                    totals[key] = totals.get(key, 0) + value
            return {f"proto.{key}": float(value) for key, value in totals.items()}

        def membership_metrics() -> Dict[str, float]:
            return {
                "membership.members": float(len(directory)),
                "membership.alive": float(len(directory.alive_members())),
            }

        registry.register_collector(engine_metrics)
        registry.register_collector(proto_metrics)
        registry.register_collector(membership_metrics)
        session.network.stats.bind_registry(registry)

    def finalize(self) -> TelemetrySnapshot:
        """Close the trace (if any) and snapshot the registry (idempotent)."""
        if self._finalized is not None:
            return self._finalized
        snapshot = TelemetrySnapshot()
        if self.writer is not None:
            self.writer.close()
            snapshot.trace_path = str(self.writer.path)
            snapshot.trace_events = self.writer.events_written
            snapshot.trace_events_by_kind = self.writer.counts_by_kind
        if self.registry is not None:
            snapshot.metrics = self.registry.snapshot()
        self._finalized = snapshot
        return snapshot


def session_meta(session) -> Dict[str, object]:
    """The trace-header metadata of one built session.

    Everything here either identifies the run (seed, size, protocol,
    dispatch backend, code fingerprint) or describes the stream geometry
    the exporters need (window layout for deadline markers).  The
    ``created_unix`` wall-clock stamp is the one deliberately
    non-deterministic field — determinism of traces is defined *modulo the
    header*.
    """
    from repro.sweep.store import code_fingerprint

    config = session.config
    stream = config.stream
    meta: Dict[str, object] = {
        "created_unix": _time.time(),
        "num_nodes": config.num_nodes,
        "seed": config.seed,
        "protocol": config.protocol,
        "backend": session.simulator.backend_name,
        "code_fingerprint": code_fingerprint(),
        "stream": {
            "window_duration": stream.window_duration,
            "num_windows": stream.num_windows,
            "packets_per_window": stream.packets_per_window,
            "start_time": stream.start_time,
            "end_time": stream.end_time,
        },
    }
    # Sharded runs trace one file per shard; the header says which fragment
    # of the fleet this is so tooling can line the tracks up side by side.
    shard_id = getattr(session, "shard_id", None)
    if shard_id is not None:
        meta["shard"] = {"id": shard_id, "num_shards": session.num_shards}
    return meta


__all__ = ["SessionTelemetry", "TelemetrySnapshot", "session_meta"]
