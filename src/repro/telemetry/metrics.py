"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metric names follow a Prometheus-flavoured convention: a dotted base name
plus optional ``{label=value}`` labels, rendered with sorted label keys so
the same (name, labels) pair always produces the same string —
``net.bytes_sent{kind=serve}``, ``proto.requests_received``,
``engine.events_dispatched``.

Two update paths feed a registry, chosen by cost:

* **handles** — :meth:`MetricsRegistry.counter` / :meth:`gauge` /
  :meth:`histogram` return small mutable objects whose ``inc`` / ``set`` /
  ``observe`` are a couple of attribute writes.  Observers hold handles and
  update them per event; the simulation hot paths never see them (the same
  host-keeps-``None`` contract as the observer edges, so a disabled
  registry costs literally nothing).
* **collectors** — :meth:`MetricsRegistry.register_collector` accepts a
  callable returning ``{rendered name: value}``, evaluated only at
  :meth:`snapshot` time.  Quantities the simulation already counts
  (``Simulator.events_processed``, the per-node protocol counters, the
  Figure-4 traffic cells of :mod:`repro.network.stats`) are exported
  through collectors, keeping one code path for accounting and telemetry.

Histograms use **fixed, upper-inclusive** bucket bounds (bucket *i* counts
``bounds[i-1] < v <= bounds[i]``; one implicit overflow bucket catches
everything above the last bound).  Snapshots expand them Prometheus-style
into cumulative ``{le=...}`` series plus ``_count`` / ``_sum``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple


class MetricsError(ValueError):
    """A metric was declared or used inconsistently."""


def render_metric_name(name: str, labels: Optional[Mapping[str, object]] = None) -> str:
    """The canonical rendered form: ``name{k1=v1,k2=v2}`` with sorted keys."""
    if not name:
        raise MetricsError("a metric needs a non-empty name")
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def _render_bound(bound: float) -> str:
    """A bucket bound as it appears in the ``le`` label (``+Inf`` for the
    overflow bucket, integers without a trailing ``.0``)."""
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"


class Counter:
    """A monotonically increasing value behind a cheap handle."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A point-in-time value behind a cheap handle."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """Fixed-bucket histogram with upper-inclusive bounds.

    ``bounds`` must be strictly increasing and finite; an implicit overflow
    bucket (``le=+Inf``) is always appended.  ``observe`` costs one bisect
    plus three attribute updates.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs at least one bucket bound")
        for left, right in zip(bounds, bounds[1:]):
            if not left < right:
                raise MetricsError(
                    f"histogram {name!r} bounds must be strictly increasing, got {bounds}"
                )
        if bounds[-1] == float("inf"):
            raise MetricsError(
                f"histogram {name!r} bounds must be finite (the +Inf overflow "
                "bucket is implicit)"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, ending at ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.total))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Histogram({self.name}, n={self.total}, sum={self.sum:g})"


Collector = Callable[[], Mapping[str, float]]
"""A snapshot-time exporter returning ``{rendered metric name: value}``."""


class MetricsRegistry:
    """Owns every metric of one session and produces flat snapshots.

    Handles are get-or-create: asking twice for the same (name, labels)
    returns the same object, so several observers may share a counter.
    Requesting an existing name as a different metric type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Collector] = []

    # ------------------------------------------------------------------
    # Handle factories
    # ------------------------------------------------------------------
    def _get_or_create(self, rendered: str, factory, kind: type):
        existing = self._metrics.get(rendered)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {rendered!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[rendered] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter handle."""
        rendered = render_metric_name(name, labels)
        return self._get_or_create(rendered, lambda: Counter(rendered), Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge handle."""
        rendered = render_metric_name(name, labels)
        return self._get_or_create(rendered, lambda: Gauge(rendered), Gauge)

    def histogram(self, name: str, bounds: Sequence[float], **labels) -> Histogram:
        """Get or create a fixed-bucket histogram handle.

        Re-requesting an existing histogram with different bounds raises —
        silently merging incompatible bucket layouts would corrupt it.
        """
        rendered = render_metric_name(name, labels)
        histogram = self._get_or_create(
            rendered, lambda: Histogram(rendered, bounds), Histogram
        )
        if histogram.bounds != tuple(float(bound) for bound in bounds):
            raise MetricsError(
                f"histogram {rendered!r} already registered with bounds "
                f"{histogram.bounds}, requested {tuple(bounds)}"
            )
        return histogram

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------
    def register_collector(self, collector: Collector) -> None:
        """Add a snapshot-time exporter (evaluated in registration order)."""
        self._collectors.append(collector)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Every metric flattened to ``{rendered name: float}``, sorted.

        Histograms expand into cumulative ``{le=...}`` series plus
        ``_count`` and ``_sum``.  Collector outputs are merged in; a
        collector colliding with a handle-backed metric (or another
        collector) raises, because the two would silently shadow each
        other.
        """
        out: Dict[str, float] = {}
        for rendered, metric in self._metrics.items():
            if isinstance(metric, (Counter, Gauge)):
                out[rendered] = metric.value
            else:
                assert isinstance(metric, Histogram)
                base, labels = _split_rendered(rendered)
                for bound, cumulative_count in metric.cumulative():
                    le_labels = dict(labels)
                    le_labels["le"] = _render_bound(bound)
                    out[render_metric_name(base, le_labels)] = float(cumulative_count)
                out[render_metric_name(base + "_count", labels)] = float(metric.total)
                out[render_metric_name(base + "_sum", labels)] = metric.sum
        for collector in self._collectors:
            for name, value in collector().items():
                if name in out:
                    raise MetricsError(
                        f"collector metric {name!r} collides with an existing metric"
                    )
                out[name] = float(value)
        return dict(sorted(out.items()))

    def table(self) -> str:
        """A human-readable snapshot, one aligned ``name value`` per line."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics)"
        width = max(len(name) for name in snap)
        return "\n".join(f"{name:<{width}}  {value:g}" for name, value in snap.items())

    def __len__(self) -> int:
        return len(self._metrics)


def _split_rendered(rendered: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`render_metric_name` (labels back into a dict)."""
    if not rendered.endswith("}"):
        return rendered, {}
    base, _, inner = rendered[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        key, _, value = part.partition("=")
        labels[key] = value
    return base, labels


__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "render_metric_name",
]
