"""Telemetry configuration: what a session records, if anything.

A :class:`TelemetryConfig` travels inside
:class:`~repro.core.session.SessionConfig` (and, one level up, inside
:class:`~repro.scenarios.spec.ScenarioSpec`).  The default ``None`` at both
carriers means *no telemetry objects exist at all*: the session builds the
exact same object graph as before this subsystem existed, so an un-armed
run pays nothing — the same host-keeps-``None`` contract as the
observer edges themselves (:mod:`repro.validation.observers`).

The config is a frozen dataclass so scenario specs that embed it stay
hashable and ``dataclasses.replace``-able, and it round-trips through plain
JSON for repro bundles (:mod:`repro.validation.bundle`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class TelemetryConfig:
    """What one session's telemetry layer records.

    Attributes
    ----------
    metrics:
        Build a :class:`~repro.telemetry.metrics.MetricsRegistry` for the
        session and snapshot it into the result
        (:attr:`~repro.core.session.SessionResult.telemetry`).
    trace_path:
        Write a ``repro.telemetry/1`` JSONL trace to this path (``None``
        disables tracing).  The writer streams with bounded memory.
    sample_every:
        Keep every N-th ``dispatch`` event in the trace (the engine edge
        fires once per simulation event and dominates trace volume; all
        other kinds are always recorded when selected, because datagram
        flow ids must stay complete).
    include_kinds / exclude_kinds:
        Per-kind trace filters over
        :data:`~repro.telemetry.schema.EVENT_KINDS`.  ``include_kinds=None``
        selects every kind; ``exclude_kinds`` is subtracted afterwards.
    flush_every:
        Buffered trace lines between writes to disk.
    """

    metrics: bool = True
    trace_path: Optional[str] = None
    sample_every: int = 1
    include_kinds: Optional[Tuple[str, ...]] = None
    exclude_kinds: Tuple[str, ...] = ()
    flush_every: int = 1000

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every!r}")
        if self.flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {self.flush_every!r}")
        from repro.telemetry.schema import EVENT_KINDS

        selected = () if self.include_kinds is None else self.include_kinds
        unknown = (set(selected) | set(self.exclude_kinds)) - set(EVENT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown trace event kinds {sorted(unknown)}; known: {list(EVENT_KINDS)}"
            )

    @property
    def armed(self) -> bool:
        """Whether this config makes the session build any telemetry at all."""
        return self.metrics or self.trace_path is not None

    def with_overrides(self, **changes) -> "TelemetryConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # JSON round-trip (repro bundles persist specs with telemetry configs)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """A plain-JSON dictionary capturing every field."""
        return {
            "metrics": self.metrics,
            "trace_path": self.trace_path,
            "sample_every": self.sample_every,
            "include_kinds": (
                None if self.include_kinds is None else list(self.include_kinds)
            ),
            "exclude_kinds": list(self.exclude_kinds),
            "flush_every": self.flush_every,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "TelemetryConfig":
        """Rebuild a config from :meth:`to_json_dict` output."""
        include = data.get("include_kinds")
        return cls(
            metrics=bool(data.get("metrics", True)),
            trace_path=data.get("trace_path"),
            sample_every=int(data.get("sample_every", 1)),
            include_kinds=None if include is None else tuple(str(k) for k in include),
            exclude_kinds=tuple(str(k) for k in data.get("exclude_kinds", ())),
            flush_every=int(data.get("flush_every", 1000)),
        )


__all__ = ["TelemetryConfig"]
