"""``repro.telemetry`` — structured tracing + metrics over the observer edges.

The subsystem has four faces:

* **metrics** (:mod:`repro.telemetry.metrics`) — a registry of counters /
  gauges / fixed-bucket histograms with stable rendered names
  (``net.bytes_sent{kind=serve}``, ``proto.requests_received``,
  ``engine.events_dispatched``), fed by cheap observer-held handles and by
  snapshot-time collectors over the simulation's existing accounting;
* **tracing** (:mod:`repro.telemetry.schema` /
  :mod:`repro.telemetry.recorder`) — a versioned (``repro.telemetry/1``)
  streaming JSONL trace of the dispatch / datagram-fate / delivery /
  protocol-phase edges, with bounded memory, sampling and per-kind filters;
* **exporters** (:mod:`repro.telemetry.export` /
  :mod:`repro.telemetry.summary`) — Chrome/Perfetto ``trace_event`` JSON
  (per-node tracks, datagram flow arrows, window-deadline markers) and a
  per-session summary table;
* **CLI** (``python -m repro.telemetry record|summarize|export|diff``) —
  runs any registered scenario traced and diffs traces by first divergence.

Arm it by putting a :class:`TelemetryConfig` on a
:class:`~repro.core.session.SessionConfig` (or a scenario spec)::

    from repro.scenarios import build_scenario
    from repro.scenarios.builder import run_spec
    from repro.telemetry import TelemetryConfig

    spec = build_scenario("homogeneous").with_overrides(
        telemetry=TelemetryConfig(trace_path="session.trace.jsonl"))
    result = run_spec(spec)
    print(result.telemetry.metrics["proto.requests_received"])

Determinism contract: telemetry observes and never mutates, so an armed
session is byte-identical to a disarmed one, and two equal configs+seeds
produce identical traces modulo the header (both pinned in
``tests/telemetry``).

The session-facing classes (:class:`SessionTelemetry`,
:class:`TelemetrySnapshot`, :class:`TraceRecorder`, :class:`MetricsObserver`)
are re-exported lazily: eagerly importing them here would close an import
cycle back through :mod:`repro.core.session`, which carries the
:class:`TelemetryConfig` field.
"""

from __future__ import annotations

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.diff import TraceDiff, diff_traces
from repro.telemetry.export import export_perfetto, perfetto_events
from repro.telemetry.metrics import (
    Collector,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    render_metric_name,
)
from repro.telemetry.schema import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    TraceError,
    TraceHeader,
    TraceWriter,
    iter_events,
    read_header,
    validate_trace,
)
from repro.telemetry.summary import TraceSummary, summarize_trace

_LAZY = {
    "MetricsObserver": "repro.telemetry.recorder",
    "SessionTelemetry": "repro.telemetry.session",
    "TelemetrySnapshot": "repro.telemetry.session",
    "TraceRecorder": "repro.telemetry.recorder",
    "callback_name": "repro.telemetry.recorder",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.telemetry' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Collector",
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsObserver",
    "MetricsRegistry",
    "SessionTelemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "TRACE_SCHEMA",
    "TraceDiff",
    "TraceError",
    "TraceHeader",
    "TraceRecorder",
    "TraceSummary",
    "TraceWriter",
    "callback_name",
    "diff_traces",
    "export_perfetto",
    "iter_events",
    "perfetto_events",
    "read_header",
    "render_metric_name",
    "summarize_trace",
    "validate_trace",
]
