"""``python -m repro.telemetry`` — record, summarize, export and diff traces.

Subcommands::

    record     run a registered scenario with telemetry armed and write a
               repro.telemetry/1 JSONL trace (plus a metrics snapshot)
    summarize  one-pass aggregate table of a trace
    export     convert a trace to Chrome/Perfetto trace_event JSON
    diff       first divergence between two traces (exit 1 on divergence)

The CI telemetry smoke job is exactly::

    python -m repro.telemetry record --scenario homogeneous --scale smoke
    python -m repro.telemetry summarize benchmarks/results/TRACE_homogeneous_smoke.jsonl
    python -m repro.telemetry export benchmarks/results/TRACE_homogeneous_smoke.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.diff import diff_traces
from repro.telemetry.export import export_perfetto
from repro.telemetry.schema import EVENT_KINDS, TraceError, validate_trace
from repro.telemetry.summary import summarize_trace

DEFAULT_TRACE_DIR = "benchmarks/results"
"""Where ``record`` drops traces unless ``--out`` says otherwise."""


def _parse_kinds(raw: Optional[str]) -> Optional[tuple]:
    if raw is None:
        return None
    kinds = tuple(part.strip() for part in raw.split(",") if part.strip())
    return kinds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Structured tracing and metrics for streaming sessions.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="run a registered scenario with telemetry armed"
    )
    record.add_argument(
        "--scenario",
        required=True,
        help="registered scenario name (see repro.scenarios)",
    )
    record.add_argument(
        "--scale",
        default=None,
        help="experiment scale sizing the run (smoke/reduced/paper/xlarge; "
        "default: the scenario's own size)",
    )
    record.add_argument("--seed", type=int, default=None, help="override the spec seed")
    record.add_argument(
        "--nodes", type=int, default=None, help="override the system size"
    )
    record.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=f"trace path (default: {DEFAULT_TRACE_DIR}/TRACE_<scenario>_<scale>.jsonl)",
    )
    record.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="also write the metrics snapshot as JSON",
    )
    record.add_argument(
        "--no-metrics",
        action="store_true",
        help="trace only, skip the metrics registry",
    )
    record.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="N",
        help="keep every N-th dispatch event (default: 1 = all)",
    )
    record.add_argument(
        "--include-kinds",
        metavar="K1,K2",
        default=None,
        help=f"only record these event kinds (known: {','.join(EVENT_KINDS)})",
    )
    record.add_argument(
        "--exclude-kinds",
        metavar="K1,K2",
        default=None,
        help="record everything except these kinds",
    )
    record.add_argument(
        "--flush-every",
        type=int,
        default=1000,
        metavar="N",
        help="buffered trace lines between disk writes (default: 1000)",
    )

    summarize = commands.add_parser("summarize", help="aggregate table of one trace")
    summarize.add_argument("trace", help="trace file written by `record`")

    export = commands.add_parser("export", help="convert a trace for a viewer")
    export.add_argument("trace", help="trace file written by `record`")
    export.add_argument(
        "--format",
        choices=("perfetto",),
        default="perfetto",
        help="output format (default: perfetto trace_event JSON)",
    )
    export.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output path (default: trace path with .perfetto.json suffix)",
    )

    diff = commands.add_parser(
        "diff", help="first divergence between two traces (exit 1 when they differ)"
    )
    diff.add_argument("left", help="first trace")
    diff.add_argument("right", help="second trace")
    return parser


def _cmd_record(args) -> int:
    # Imported here: the scenario/experiment layers pull in the whole
    # simulation stack, which summarize/export/diff runs don't need.
    from repro.scenarios import available_scenarios, build_scenario
    from repro.scenarios.builder import run_spec

    if args.scenario not in available_scenarios():
        print(
            f"error: unknown scenario {args.scenario!r}; "
            f"registered: {', '.join(sorted(available_scenarios()))}",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    scale_name = "spec"
    if args.scale is not None:
        from repro.experiments.scale import scale_by_name

        scale = scale_by_name(args.scale)
        scale_name = scale.name
        overrides["num_nodes"] = scale.num_nodes
        overrides["stream"] = scale.stream_config()
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.seed is not None:
        overrides["seed"] = args.seed

    out = args.out
    if out is None:
        out = str(Path(DEFAULT_TRACE_DIR) / f"TRACE_{args.scenario}_{scale_name}.jsonl")
    overrides["telemetry"] = TelemetryConfig(
        metrics=not args.no_metrics,
        trace_path=out,
        sample_every=args.sample_every,
        include_kinds=_parse_kinds(args.include_kinds),
        exclude_kinds=_parse_kinds(args.exclude_kinds) or (),
        flush_every=args.flush_every,
    )
    spec = build_scenario(args.scenario, **overrides)
    print(f"recording {spec.describe()}")
    result = run_spec(spec)
    snapshot = result.telemetry
    assert snapshot is not None
    print(
        f"trace written to {snapshot.trace_path} "
        f"({snapshot.trace_events:,} events, "
        f"{len(snapshot.trace_events_by_kind)} kinds)"
    )
    if snapshot.metrics:
        print(f"metrics captured: {len(snapshot.metrics)}")
    if args.metrics_out is not None:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot.metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics written to {metrics_path}")
    return 0


def _cmd_summarize(args) -> int:
    header, count = validate_trace(args.trace)
    summary = summarize_trace(args.trace)
    print(summary.table())
    print(f"\nvalidated: {count:,} events, schema {header.schema}")
    return 0


def _cmd_export(args) -> int:
    out_path = export_perfetto(args.trace, args.out)
    print(f"perfetto trace written to {out_path}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_diff(args) -> int:
    outcome = diff_traces(args.left, args.right)
    print(outcome.describe())
    return 0 if outcome.identical else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "record": _cmd_record,
        "summarize": _cmd_summarize,
        "export": _cmd_export,
        "diff": _cmd_diff,
    }
    try:
        return handlers[args.command](args)
    except (TraceError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
