"""Session observers that feed the telemetry layer.

Both observers here ride the PR 4 instrumentation edges
(:mod:`repro.validation.observers`) and obey their contract: they never
mutate what they observe, so a session runs byte-identically with or
without them attached (pinned by ``tests/telemetry`` and the
``telemetry-overhead`` benchmark).

:class:`TraceRecorder` turns the edges into ``repro.telemetry/1`` events;
:class:`MetricsObserver` updates registry handles (fate counters and the
histograms that only exist at observation granularity — serialization
delay, datagram sizes, delivery lag).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.network.message import Message, NodeId
from repro.streaming.packets import PacketId
from repro.streaming.schedule import StreamSchedule
from repro.validation.observers import SessionObserver

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.schema import EVENT_KINDS, TraceError, TraceWriter

#: Bucket bounds (seconds) for the upload-serialization delay histogram:
#: a 1 kB datagram at 700 kbps serializes in ~11 ms, so the buckets bracket
#: the uncongested case and stretch to multi-second backlog queueing.
SERIALIZATION_DELAY_BOUNDS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Bucket bounds (bytes) for datagram sizes: control messages are tens of
#: bytes, stream packets ~1 kB (the paper's payload + headers).
DATAGRAM_SIZE_BOUNDS = (64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)

#: Bucket bounds (seconds) for delivery lag behind publish time, spanning
#: the paper's playout lags (10 s / 20 s / offline).
DELIVERY_LAG_BOUNDS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0)


def callback_name(callback: Any) -> str:
    """A deterministic display name for an event callback.

    Never falls back to ``repr`` — bound-method reprs embed memory
    addresses, which would make two identical runs produce different
    traces.
    """
    qualname = getattr(callback, "__qualname__", None)
    if isinstance(qualname, str):
        return qualname
    if isinstance(callback, partial):
        return callback_name(callback.func)
    bound = getattr(callback, "__func__", None)
    if bound is not None:
        return callback_name(bound)
    return type(callback).__name__


class TraceRecorder(SessionObserver):
    """Streams every selected instrumentation edge into a trace writer.

    Datagram events share a **sequence number** (``d``) assigned in
    acceptance order, linking each ``send`` to its terminal fate.  The
    ``id(message) -> seq`` map only holds in-flight datagrams — terminal
    fates pop their entry — so memory stays bounded and recycled object
    ids cannot alias.  Sequence numbers are assigned even when ``send``
    events are filtered out, keeping ``d`` stable under any filter
    combination.
    """

    def __init__(
        self,
        writer: TraceWriter,
        sample_every: int = 1,
        include_kinds: Optional[Sequence[str]] = None,
        exclude_kinds: Sequence[str] = (),
    ) -> None:
        if sample_every < 1:
            raise TraceError(f"sample_every must be >= 1, got {sample_every!r}")
        wanted = set(EVENT_KINDS) if include_kinds is None else set(include_kinds)
        unknown = (wanted | set(exclude_kinds)) - set(EVENT_KINDS)
        if unknown:
            raise TraceError(
                f"unknown trace event kinds {sorted(unknown)}; known: {list(EVENT_KINDS)}"
            )
        wanted -= set(exclude_kinds)
        self._writer = writer
        self._wanted = wanted
        self._sample_every = sample_every
        self._dispatch_seen = 0
        self._next_seq = 0
        self._in_flight: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Engine edge
    # ------------------------------------------------------------------
    def on_event_dispatch(self, time: float, callback: Any, args: Tuple[Any, ...]) -> None:
        self._dispatch_seen += 1
        if "dispatch" not in self._wanted:
            return
        if (self._dispatch_seen - 1) % self._sample_every:
            return
        self._writer.append("dispatch", time, fn=callback_name(callback))

    # ------------------------------------------------------------------
    # Transport edges
    # ------------------------------------------------------------------
    def on_send_blocked(self, message: Message, now: float) -> None:
        if "send_blocked" in self._wanted:
            self._writer.append("send_blocked", now, **_message_fields(message))

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self._in_flight[id(message)] = seq
        if "send" in self._wanted:
            self._writer.append(
                "send", now, **_message_fields(message), d=seq, fin=finish_time
            )

    def on_congestion_drop(self, message: Message, now: float) -> None:
        if "drop_congestion" in self._wanted:
            self._writer.append("drop_congestion", now, **_message_fields(message))

    def on_in_flight_loss(self, message: Message, now: float) -> None:
        seq = self._in_flight.pop(id(message), -1)
        if "loss" in self._wanted:
            self._writer.append("loss", now, **_message_fields(message), d=seq)

    def on_delivered(self, message: Message, now: float) -> None:
        seq = self._in_flight.pop(id(message), -1)
        if "deliver_msg" in self._wanted:
            self._writer.append("deliver_msg", now, **_message_fields(message), d=seq)

    def on_delivery_dropped(self, message: Message, now: float) -> None:
        seq = self._in_flight.pop(id(message), -1)
        if "drop_dead" in self._wanted:
            self._writer.append("drop_dead", now, **_message_fields(message), d=seq)

    def on_node_failed(self, node_id: NodeId, now: float) -> None:
        if "node_failed" in self._wanted:
            self._writer.append("node_failed", now, n=node_id)

    def on_node_recovered(self, node_id: NodeId, now: float) -> None:
        if "node_recovered" in self._wanted:
            self._writer.append("node_recovered", now, n=node_id)

    # ------------------------------------------------------------------
    # Delivery edge
    # ------------------------------------------------------------------
    def on_packet_delivered(
        self, node_id: NodeId, packet_id: PacketId, time: float, is_source: bool
    ) -> None:
        if "packet" in self._wanted:
            self._writer.append("packet", time, n=node_id, p=packet_id, source=is_source)

    # ------------------------------------------------------------------
    # Protocol-phase edges
    # ------------------------------------------------------------------
    def on_gossip_round(
        self, node_id: NodeId, time: float, partners: Sequence[NodeId]
    ) -> None:
        if "round" in self._wanted:
            self._writer.append("round", time, n=node_id, np=len(partners))

    def on_feed_me_round(
        self, node_id: NodeId, time: float, targets: Sequence[NodeId]
    ) -> None:
        if "feed_me_round" in self._wanted:
            self._writer.append("feed_me_round", time, n=node_id, nt=len(targets))


def _message_fields(message: Message) -> Dict[str, Any]:
    return {
        "snd": message.sender,
        "rcv": message.receiver,
        "mk": message.kind,
        "sz": message.size_bytes,
    }


class MetricsObserver(SessionObserver):
    """Updates registry handles from the observer edges.

    Only quantities *not* already counted by the simulation live here
    (everything the session counts anyway — traffic cells, protocol
    counters, events dispatched — is exported through snapshot-time
    collectors instead, keeping a single accounting code path).
    """

    def __init__(
        self, registry: MetricsRegistry, schedule: Optional[StreamSchedule] = None
    ) -> None:
        self._schedule = schedule
        self._fates = {
            fate: registry.counter("net.datagrams", fate=fate)
            for fate in (
                "blocked",
                "accepted",
                "congestion_drop",
                "loss",
                "delivered",
                "dropped_dead",
            )
        }
        self._serialization = registry.histogram(
            "net.serialization_delay_seconds", SERIALIZATION_DELAY_BOUNDS
        )
        self._lag = registry.histogram(
            "stream.delivery_lag_seconds", DELIVERY_LAG_BOUNDS
        )
        self._failures = registry.counter("membership.failures")
        self._recoveries = registry.counter("membership.recoveries")
        self._registry = registry
        self._size_by_kind: Dict[str, Any] = {}

    def _size_histogram(self, kind: str):
        histogram = self._size_by_kind.get(kind)
        if histogram is None:
            histogram = self._registry.histogram(
                "net.datagram_bytes", DATAGRAM_SIZE_BOUNDS, kind=kind
            )
            self._size_by_kind[kind] = histogram
        return histogram

    def on_send_blocked(self, message: Message, now: float) -> None:
        self._fates["blocked"].inc()

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        self._fates["accepted"].inc()
        self._serialization.observe(finish_time - now)
        self._size_histogram(message.kind).observe(float(message.size_bytes))

    def on_congestion_drop(self, message: Message, now: float) -> None:
        self._fates["congestion_drop"].inc()

    def on_in_flight_loss(self, message: Message, now: float) -> None:
        self._fates["loss"].inc()

    def on_delivered(self, message: Message, now: float) -> None:
        self._fates["delivered"].inc()

    def on_delivery_dropped(self, message: Message, now: float) -> None:
        self._fates["dropped_dead"].inc()

    def on_node_failed(self, node_id: NodeId, now: float) -> None:
        self._failures.inc()

    def on_node_recovered(self, node_id: NodeId, now: float) -> None:
        self._recoveries.inc()

    def on_packet_delivered(
        self, node_id: NodeId, packet_id: PacketId, time: float, is_source: bool
    ) -> None:
        if is_source or self._schedule is None:
            return
        publish_time = self._schedule.packet(packet_id).publish_time
        self._lag.observe(time - publish_time)


__all__ = [
    "DATAGRAM_SIZE_BOUNDS",
    "DELIVERY_LAG_BOUNDS",
    "MetricsObserver",
    "SERIALIZATION_DELAY_BOUNDS",
    "TraceRecorder",
    "callback_name",
]
