"""The versioned ``repro.telemetry/1`` streaming trace format.

A trace is a JSONL file: the first line is a **header**, every following
line one **event**.  The format is backend-agnostic by design — ROADMAP
items 1 (sharded PDES) and 2 (asyncio-UDP backend) will emit the same
schema, which is what makes :mod:`repro.telemetry.diff` a bit-reproducibility
triage tool across execution backends.

Header line::

    {"schema": "repro.telemetry/1", "meta": {...}}

``meta`` carries run identification (seed, node count, protocol, dispatch
backend, code fingerprint, stream geometry) plus a wall-clock timestamp.
Determinism is pinned *modulo the header*: two runs of the same config and
seed produce byte-identical event lines, while the header may differ in
wall-clock fields.

Event lines are compact objects with three universal keys —

* ``i``  contiguous event index (assigned by the writer),
* ``t``  simulated time in seconds,
* ``k``  event kind (one of :data:`EVENT_KINDS`)

— plus per-kind fields:

==================  ====================================================
kind                extra fields
==================  ====================================================
``dispatch``        ``fn`` (callback qualname) — sampling applies
``send``            ``snd rcv mk sz d fin`` (datagram seq + serialization
                    finish time)
``send_blocked``    ``snd rcv mk sz`` (sender dead, nothing entered)
``drop_congestion`` ``snd rcv mk sz`` (upload backlog full)
``loss``            ``snd rcv mk sz d`` (lost in flight after accept)
``deliver_msg``     ``snd rcv mk sz d`` (datagram reached live receiver)
``drop_dead``       ``snd rcv mk sz d`` (receiver dead at arrival)
``packet``          ``n p source`` (first-time stream-packet delivery)
``node_failed``     ``n``
``node_recovered``  ``n``
``round``           ``n np`` (gossip round with np partners)
``feed_me_round``   ``n nt`` (feed-me round with nt targets)
==================  ====================================================

``d`` is a **datagram sequence number** assigned in acceptance order (not a
Python ``id()``, which would differ across runs): the same ``d`` links a
``send`` to its terminal fate, which is what the Perfetto exporter turns
into flow arrows.
"""

from __future__ import annotations

import json
from collections import Counter as KindCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterator, Optional, Tuple, Union

TRACE_SCHEMA = "repro.telemetry/1"
"""Schema tag of traces this code writes."""

SCHEMA_NAME = "repro.telemetry"
SCHEMA_MAJOR = 1

EVENT_KINDS: Tuple[str, ...] = (
    "dispatch",
    "send",
    "send_blocked",
    "drop_congestion",
    "loss",
    "deliver_msg",
    "drop_dead",
    "packet",
    "node_failed",
    "node_recovered",
    "round",
    "feed_me_round",
)
"""Every event kind of schema major version 1, in rough hot-path order."""


class TraceError(ValueError):
    """A trace file violates the schema (or is not a trace at all)."""


@dataclass(frozen=True)
class TraceHeader:
    """The parsed first line of a trace."""

    schema: str
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def major_version(self) -> int:
        """The schema's major version number."""
        return int(self.schema.rpartition("/")[2])


class TraceWriter:
    """Streams events to a JSONL trace with bounded memory.

    The header is written on construction; events are buffered and flushed
    every ``flush_every`` lines (and on :meth:`close`), so an arbitrarily
    long session holds at most ``flush_every`` encoded lines in memory.
    The writer assigns the contiguous ``i`` index — callers supply events
    without it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        flush_every: int = 1000,
    ) -> None:
        if flush_every < 1:
            raise TraceError(f"flush_every must be >= 1, got {flush_every!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._flush_every = flush_every
        self._buffer: list = []
        self._count = 0
        self._by_kind: KindCounter = KindCounter()
        self._file: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        header = {"schema": TRACE_SCHEMA, "meta": dict(meta or {})}
        self._file.write(json.dumps(header, separators=(",", ":")) + "\n")
        self._file.flush()

    @property
    def events_written(self) -> int:
        """Events appended so far (header excluded)."""
        return self._count

    @property
    def counts_by_kind(self) -> Dict[str, int]:
        """Per-kind event counts so far."""
        return dict(self._by_kind)

    def append(self, kind: str, time: float, **fields) -> None:
        """Append one event; ``i`` is assigned here."""
        event = {"i": self._count, "t": time, "k": kind}
        event.update(fields)
        self._buffer.append(json.dumps(event, separators=(",", ":")))
        self._count += 1
        self._by_kind[kind] += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines through to disk (so a live trace is tailable)."""
        if self._file is None:
            raise TraceError(f"trace writer for {self.path} is closed")
        if self._buffer:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._file is None:
            return
        self.flush()
        self._file.close()
        self._file = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_header(path: Union[str, Path]) -> TraceHeader:
    """Parse and validate a trace's header line.

    Raises :class:`TraceError` for a missing/foreign schema tag or an
    unsupported major version — minor-version evolution stays readable
    because events are self-describing objects.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
    if not first.strip():
        raise TraceError(f"{path}: empty file is not a trace")
    try:
        data = json.loads(first)
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: header line is not JSON: {exc}") from exc
    schema = data.get("schema") if isinstance(data, dict) else None
    if not isinstance(schema, str):
        raise TraceError(f"{path}: header has no schema tag")
    name, _, version = schema.rpartition("/")
    if name != SCHEMA_NAME or not version.isdigit():
        raise TraceError(f"{path}: foreign schema tag {schema!r}")
    if int(version) != SCHEMA_MAJOR:
        raise TraceError(
            f"{path}: unsupported schema major version {version} "
            f"(this reader understands {SCHEMA_NAME}/{SCHEMA_MAJOR})"
        )
    meta = data.get("meta", {})
    if not isinstance(meta, dict):
        raise TraceError(f"{path}: header meta must be an object")
    return TraceHeader(schema=schema, meta=meta)


def iter_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield every event of a trace (header validated, then skipped)."""
    read_header(path)
    with open(path, "r", encoding="utf-8") as handle:
        handle.readline()  # header
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_number}: bad event line: {exc}") from exc


def validate_trace(path: Union[str, Path]) -> Tuple[TraceHeader, int]:
    """Full structural validation; returns ``(header, event count)``.

    Checks the header, a contiguous ``i`` sequence, non-decreasing ``t``
    (simulated time is monotone, so any regression means interleaved or
    corrupt writes) and known event kinds.
    """
    header = read_header(path)
    count = 0
    last_time = float("-inf")
    for event in iter_events(path):
        if event.get("i") != count:
            raise TraceError(
                f"{path}: event index {event.get('i')!r} where {count} was expected"
            )
        kind = event.get("k")
        if kind not in EVENT_KINDS:
            raise TraceError(f"{path}: event {count} has unknown kind {kind!r}")
        time = event.get("t")
        if not isinstance(time, (int, float)) or time < last_time:
            raise TraceError(
                f"{path}: event {count} time {time!r} regresses below {last_time!r}"
            )
        last_time = float(time)
        count += 1
    return header, count


__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA",
    "TraceError",
    "TraceHeader",
    "TraceWriter",
    "iter_events",
    "read_header",
    "validate_trace",
]
