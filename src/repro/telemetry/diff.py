"""Trace diffing: the bit-reproducibility triage primitive.

Two runs of the same config and seed must produce identical traces modulo
the header — across dispatch backends too (the ``python`` oracle, the
batched/numpy backends, and the future sharded/asyncio ones all feed the
same observer edges).  When they do not, the *first divergent event* is the
single most useful debugging fact: everything before it is common prefix,
so the divergence's cause sits in that event's neighbourhood.

:func:`diff_traces` streams both files in lockstep (bounded memory,
headers excluded) and reports the first index where the event objects
differ, or where one trace ends early.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.telemetry.schema import iter_events, read_header


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of comparing two traces event-by-event."""

    identical: bool
    events_compared: int
    index: Optional[int] = None
    left: Optional[Dict[str, Any]] = None
    right: Optional[Dict[str, Any]] = None
    reason: str = ""

    def describe(self) -> str:
        """Human-readable verdict."""
        if self.identical:
            return f"traces identical ({self.events_compared:,} events)"
        lines = [f"traces diverge at event index {self.index}: {self.reason}"]
        lines.append(f"  left:  {self.left if self.left is not None else '<ended>'}")
        lines.append(f"  right: {self.right if self.right is not None else '<ended>'}")
        return "\n".join(lines)


def diff_traces(
    left_path: Union[str, Path], right_path: Union[str, Path]
) -> TraceDiff:
    """First divergence between two traces (headers validated, not compared)."""
    read_header(left_path)
    read_header(right_path)
    left_events = iter_events(left_path)
    right_events = iter_events(right_path)
    index = 0
    sentinel = object()
    while True:
        left = next(left_events, sentinel)
        right = next(right_events, sentinel)
        if left is sentinel and right is sentinel:
            return TraceDiff(identical=True, events_compared=index)
        if left is sentinel or right is sentinel:
            which = "left" if left is sentinel else "right"
            return TraceDiff(
                identical=False,
                events_compared=index,
                index=index,
                left=None if left is sentinel else left,  # type: ignore[arg-type]
                right=None if right is sentinel else right,  # type: ignore[arg-type]
                reason=f"{which} trace ended after {index} events",
            )
        if left != right:
            differing = sorted(
                key
                for key in set(left) | set(right)  # type: ignore[arg-type]
                if left.get(key, sentinel) != right.get(key, sentinel)  # type: ignore[union-attr]
            )
            return TraceDiff(
                identical=False,
                events_compared=index,
                index=index,
                left=left,  # type: ignore[arg-type]
                right=right,  # type: ignore[arg-type]
                reason=f"fields differ: {', '.join(differing)}",
            )
        index += 1


__all__ = ["TraceDiff", "diff_traces"]
