"""Per-session trace summaries: one streaming pass, one table.

:func:`summarize_trace` reads a ``repro.telemetry/1`` trace once (bounded
memory — nothing but counters accumulate) and produces a
:class:`TraceSummary`: event counts per kind, datagram fates and bytes per
message kind, the set of nodes seen, and the covered time span.  This is
the ``summarize`` CLI subcommand and the quick first look before opening a
trace in Perfetto.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Set, Union

from repro.telemetry.schema import TraceHeader, iter_events, read_header

#: Trace kinds that describe a datagram's terminal (or refused) fate.
_FATE_KINDS = ("send_blocked", "drop_congestion", "loss", "deliver_msg", "drop_dead")


@dataclass
class TraceSummary:
    """Aggregates of one trace (everything a streaming pass can count)."""

    path: str
    header: TraceHeader
    total_events: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    datagrams_sent: int = 0
    datagram_fates: Dict[str, int] = field(default_factory=dict)
    bytes_sent_by_kind: Dict[str, int] = field(default_factory=dict)
    packet_deliveries: int = 0
    nodes_seen: int = 0
    failures: int = 0
    recoveries: int = 0
    first_time: float = 0.0
    last_time: float = 0.0

    def table(self) -> str:
        """A human-readable multi-section summary."""
        meta = self.header.meta
        lines = [f"trace     {self.path}", f"schema    {self.header.schema}"]
        if meta:
            described = ", ".join(
                f"{key}={meta[key]}"
                for key in ("num_nodes", "seed", "protocol", "backend")
                if key in meta
            )
            if described:
                lines.append(f"run       {described}")
        lines.append(
            f"events    {self.total_events:,} over "
            f"[{self.first_time:.3f}s, {self.last_time:.3f}s]"
        )
        lines.append("")
        lines.append("events by kind:")
        for kind in sorted(self.by_kind):
            lines.append(f"  {kind:<16} {self.by_kind[kind]:>10,}")
        if self.datagrams_sent or any(self.datagram_fates.values()):
            lines.append("")
            lines.append("datagram fates:")
            lines.append(f"  {'accepted':<16} {self.datagrams_sent:>10,}")
            for fate in _FATE_KINDS:
                count = self.datagram_fates.get(fate, 0)
                if count:
                    lines.append(f"  {fate:<16} {count:>10,}")
        if self.bytes_sent_by_kind:
            lines.append("")
            lines.append("bytes sent by message kind:")
            for kind in sorted(self.bytes_sent_by_kind):
                lines.append(f"  {kind:<16} {self.bytes_sent_by_kind[kind]:>12,}")
        lines.append("")
        lines.append(
            f"packet deliveries {self.packet_deliveries:,} across "
            f"{self.nodes_seen} node(s); failures {self.failures}, "
            f"recoveries {self.recoveries}"
        )
        return "\n".join(lines)


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """One streaming pass over a trace, counters only."""
    header = read_header(path)
    by_kind: Counter = Counter()
    fates: Counter = Counter()
    bytes_by_kind: Counter = Counter()
    nodes: Set[int] = set()
    summary = TraceSummary(path=str(path), header=header)
    first_time = None
    last_time = 0.0
    for event in iter_events(path):
        kind = event["k"]
        by_kind[kind] += 1
        time = event["t"]
        if first_time is None:
            first_time = time
        last_time = time
        if kind == "send":
            summary.datagrams_sent += 1
            bytes_by_kind[event["mk"]] += event["sz"]
        elif kind in _FATE_KINDS:
            fates[kind] += 1
        elif kind == "packet":
            summary.packet_deliveries += 1
            nodes.add(event["n"])
        elif kind == "node_failed":
            summary.failures += 1
        elif kind == "node_recovered":
            summary.recoveries += 1
        for key in ("snd", "rcv", "n"):
            if key in event:
                nodes.add(event[key])
    summary.total_events = sum(by_kind.values())
    summary.by_kind = dict(by_kind)
    summary.datagram_fates = dict(fates)
    summary.bytes_sent_by_kind = dict(bytes_by_kind)
    summary.nodes_seen = len(nodes)
    summary.first_time = first_time if first_time is not None else 0.0
    summary.last_time = last_time
    return summary


__all__ = ["TraceSummary", "summarize_trace"]
