"""Chrome/Perfetto ``trace_event`` export.

Turns a ``repro.telemetry/1`` JSONL trace into the JSON object format both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* every **node** becomes a thread track (``pid 0``, ``tid = node id``) via
  ``M``-phase metadata events, with the source named explicitly;
* every accepted **datagram** becomes a complete (``X``) slice on its
  sender's track spanning the upload-serialization interval, plus a flow
  arrow (``s`` → ``f``) to the tiny slice at its delivery (or loss /
  dead-receiver drop), keyed by the deterministic datagram seq ``d``;
* congestion drops, blocked sends, protocol rounds, first-time packet
  deliveries and churn transitions become instant (``i``) events on the
  track they concern;
* the stream geometry in the trace header synthesizes **window-deadline
  markers**: one process-scoped instant per FEC window at its last
  packet's publish time.

Timestamps are microseconds (the ``trace_event`` unit); simulated seconds
are scaled by 1e6.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.telemetry.schema import TraceHeader, iter_events, read_header

_PID = 0
#: Minimum slice duration in microseconds so zero-length slices stay visible.
_MIN_DUR_US = 1


def _us(seconds: float) -> int:
    return round(seconds * 1_000_000)


def _slice(tid: int, ts: float, dur_us: int, name: str, cat: str, **args) -> Dict[str, Any]:
    event = {
        "ph": "X",
        "pid": _PID,
        "tid": tid,
        "ts": _us(ts),
        "dur": max(dur_us, _MIN_DUR_US),
        "name": name,
        "cat": cat,
    }
    if args:
        event["args"] = args
    return event


def _instant(tid: int, ts: float, name: str, cat: str, scope: str = "t", **args) -> Dict[str, Any]:
    event = {
        "ph": "i",
        "pid": _PID,
        "tid": tid,
        "ts": _us(ts),
        "name": name,
        "cat": cat,
        "s": scope,
    }
    if args:
        event["args"] = args
    return event


def _flow(phase: str, flow_id: int, tid: int, ts: float) -> Dict[str, Any]:
    event = {
        "ph": phase,
        "pid": _PID,
        "tid": tid,
        "ts": _us(ts),
        "id": flow_id,
        "name": "datagram",
        "cat": "flow",
    }
    if phase == "f":
        event["bp"] = "e"  # bind to the enclosing slice
    return event


def _thread_metadata(node_ids: Iterable[int]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "name": "process_name",
            "args": {"name": "repro streaming session"},
        }
    ]
    for node_id in sorted(node_ids):
        label = "source (node 0)" if node_id == 0 else f"node {node_id}"
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": node_id,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    return events


def _window_markers(header: TraceHeader) -> List[Dict[str, Any]]:
    stream = header.meta.get("stream")
    if not isinstance(stream, dict):
        return []
    try:
        num_windows = int(stream["num_windows"])
        window_duration = float(stream["window_duration"])
        start_time = float(stream.get("start_time", 0.0))
    except (KeyError, TypeError, ValueError):
        return []
    markers = []
    for window in range(num_windows):
        deadline = start_time + (window + 1) * window_duration
        markers.append(
            _instant(
                0,
                deadline,
                f"window {window} published",
                "stream",
                scope="p",
                window=window,
            )
        )
    return markers


def perfetto_events(
    header: TraceHeader, events: Iterable[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for a header + event stream.

    ``dispatch`` events are deliberately not rendered — at one per
    simulation event they would dwarf every track; the summary table covers
    them.
    """
    out: List[Dict[str, Any]] = []
    node_ids = set()
    num_nodes = header.meta.get("num_nodes")
    if isinstance(num_nodes, int):
        node_ids.update(range(num_nodes))
    body: List[Dict[str, Any]] = []
    for event in events:
        kind = event["k"]
        time = event["t"]
        if kind == "send":
            sender, receiver = event["snd"], event["rcv"]
            node_ids.update((sender, receiver))
            duration = _us(event["fin"]) - _us(time)
            body.append(
                _slice(
                    sender,
                    time,
                    duration,
                    f"send {event['mk']}",
                    "net",
                    to=receiver,
                    bytes=event["sz"],
                    d=event["d"],
                )
            )
            body.append(_flow("s", event["d"], sender, time))
        elif kind == "deliver_msg":
            receiver = event["rcv"]
            node_ids.add(receiver)
            body.append(
                _slice(
                    receiver,
                    time,
                    _MIN_DUR_US,
                    f"recv {event['mk']}",
                    "net",
                    frm=event["snd"],
                    bytes=event["sz"],
                    d=event["d"],
                )
            )
            if event["d"] >= 0:
                body.append(_flow("f", event["d"], receiver, time))
        elif kind in ("loss", "drop_dead"):
            receiver = event["rcv"]
            node_ids.add(receiver)
            label = "lost in flight" if kind == "loss" else "receiver dead"
            body.append(
                _slice(
                    receiver,
                    time,
                    _MIN_DUR_US,
                    f"{label} ({event['mk']})",
                    "net.drop",
                    frm=event["snd"],
                    d=event["d"],
                )
            )
            if event["d"] >= 0:
                body.append(_flow("f", event["d"], receiver, time))
        elif kind in ("drop_congestion", "send_blocked"):
            sender = event["snd"]
            node_ids.add(sender)
            label = "congestion drop" if kind == "drop_congestion" else "send blocked"
            body.append(
                _instant(
                    sender,
                    time,
                    f"{label} ({event['mk']})",
                    "net.drop",
                    to=event["rcv"],
                )
            )
        elif kind == "packet":
            node = event["n"]
            node_ids.add(node)
            body.append(
                _instant(node, time, f"packet {event['p']}", "stream", p=event["p"])
            )
        elif kind == "round":
            node_ids.add(event["n"])
            body.append(
                _instant(event["n"], time, "gossip round", "proto", partners=event["np"])
            )
        elif kind == "feed_me_round":
            node_ids.add(event["n"])
            body.append(
                _instant(event["n"], time, "feed-me round", "proto", targets=event["nt"])
            )
        elif kind == "node_failed":
            node_ids.add(event["n"])
            body.append(_instant(event["n"], time, "node failed", "churn", scope="p"))
        elif kind == "node_recovered":
            node_ids.add(event["n"])
            body.append(_instant(event["n"], time, "node recovered", "churn", scope="p"))
    out.extend(_thread_metadata(node_ids))
    out.extend(_window_markers(header))
    out.extend(body)
    return out


def export_perfetto(
    trace_path: Union[str, Path], out_path: Optional[Union[str, Path]] = None
) -> Path:
    """Convert a trace file; returns the written path.

    ``out_path`` defaults to the trace path with a ``.perfetto.json``
    suffix.  The output is a standard ``trace_event`` JSON object —
    drag-and-drop it into https://ui.perfetto.dev or ``chrome://tracing``.
    """
    trace_path = Path(trace_path)
    if out_path is None:
        out_path = trace_path.with_suffix(".perfetto.json")
    out_path = Path(out_path)
    header = read_header(trace_path)
    document = {
        "traceEvents": perfetto_events(header, iter_events(trace_path)),
        "displayTimeUnit": "ms",
        "otherData": {"schema": header.schema, "source": str(trace_path)},
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return out_path


__all__ = ["export_perfetto", "perfetto_events"]
