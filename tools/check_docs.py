#!/usr/bin/env python
"""Documentation checker: code blocks must parse, links must resolve.

Run from the repository root (CI's ``docs`` job does)::

    python tools/check_docs.py

Checks, over ``README.md`` and ``docs/*.md``:

1. every fenced ```` ```python ```` code block compiles (syntax check via
   ``compile()`` — blocks are never executed, so they may reference
   optional scale or name their own files);
2. every relative markdown link points at a file that exists in the tree;
3. every anchored link (``docs/foo.md#section`` or ``#section``) matches a
   heading in the target document, using GitHub's slugging rules.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

ROOT = Path(__file__).resolve().parent.parent

FENCE = re.compile(r"^```(\w*)\s*$")
# Inline markdown links; images excluded via the negative lookbehind.
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")


def doc_files() -> List[Path]:
    """The documents under check: the README plus the docs tree."""
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def iter_code_blocks(text: str) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(first_line_number, language, source)`` per fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE.match(lines[i])
        if match is None:
            i += 1
            continue
        language = match.group(1)
        start = i + 1
        i = start
        while i < len(lines) and not lines[i].startswith("```"):
            i += 1
        yield start + 1, language, "\n".join(lines[start:i])
        i += 1


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    # Drop inline code/link markup, lowercase, keep word chars and hyphens.
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    """Every anchor a markdown document exposes (fenced blocks excluded)."""
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match is not None:
            slugs.add(github_slug(match.group(2)))
    return slugs


def check_code_blocks(path: Path, problems: List[str]) -> int:
    """Compile every python block; returns how many were checked."""
    checked = 0
    for line_number, language, source in iter_code_blocks(path.read_text(encoding="utf-8")):
        if language != "python":
            continue
        checked += 1
        try:
            compile(source, f"{path.name}:{line_number}", "exec")
        except SyntaxError as exc:
            problems.append(
                f"{path.relative_to(ROOT)}:{line_number}: python block does not "
                f"parse: {exc.msg} (block line {exc.lineno})"
            )
    return checked


def check_links(path: Path, problems: List[str]) -> int:
    """Resolve every relative link and anchor; returns how many were checked."""
    checked = 0
    text = path.read_text(encoding="utf-8")
    # Strip fenced blocks so shell snippets cannot produce false links.
    stripped = []
    in_fence = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            stripped.append(line)
    for target in LINK.findall("\n".join(stripped)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        checked += 1
        file_part, _, anchor = target.partition("#")
        resolved = path if not file_part else (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{path.relative_to(ROOT)}: broken link target {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path.relative_to(ROOT)}: link {target!r} names a heading "
                    f"that does not exist in {resolved.name}"
                )
    return checked


def main() -> int:
    problems: List[str] = []
    blocks = links = 0
    files = doc_files()
    for path in files:
        blocks += check_code_blocks(path, problems)
        links += check_links(path, problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    status = "FAILED" if problems else "ok"
    print(
        f"docs check {status}: {len(files)} files, {blocks} python blocks "
        f"compiled, {links} links resolved, {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
