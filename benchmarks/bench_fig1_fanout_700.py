"""Figure 1 — percentage of nodes viewing with < 1 % jitter vs fanout (700 kbps).

Paper shape: a bell with an optimal plateau slightly above ln(n) (fanouts
7–15 at 230 nodes); lower fanouts fail to disseminate, higher fanouts congest
the upload caps.  The offline-viewing curve stays high for moderately large
fanouts because the throttling queues drain after the source stops.

The *right* edge of that bell — congestion collapse at oversized fanouts —
only exists where the upload caps actually saturate.  At the 30-node smoke
scale they never do (``ExperimentScale.fanout_collapse_expected`` is False),
so the collapse check flips into its contrapositive: the curve must stay
high at the largest fanout.  The rising left edge is asserted at every
scale.
"""

from repro.experiments.figures import figure1_fanout_700


def test_figure1_fanout_700(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure1_fanout_700,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    offline = result.series_by_label("offline viewing")
    ten_second = result.series_by_label("10s lag")
    optimal = float(bench_scale.optimal_fanout)
    smallest = float(min(bench_scale.fanout_grid))
    largest = float(max(bench_scale.fanout_grid))

    # Shape check 1: the optimal fanout serves (almost) everyone.
    assert offline.y_at(optimal) >= 90.0
    # Shape check 2: the smallest fanout is clearly worse than the optimum.
    assert ten_second.y_at(smallest) < ten_second.y_at(optimal)
    if bench_scale.fanout_collapse_expected:
        # Shape check 3: the largest fanout collapses for real-time lags.
        assert ten_second.y_at(largest) < ten_second.y_at(optimal) - 30.0
    else:
        # No collapse regime at this scale: the caps never saturate, so the
        # largest fanout must be at least as good as the optimum.
        assert ten_second.y_at(largest) >= ten_second.y_at(optimal)
