"""Figure 1 — percentage of nodes viewing with < 1 % jitter vs fanout (700 kbps).

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure1``).
"""

from repro.bench.figure_checks import check_figure1
from repro.experiments.figures import figure1_fanout_700


def test_figure1_fanout_700(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure1_fanout_700,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure1(result, bench_scale, bench_cache)
