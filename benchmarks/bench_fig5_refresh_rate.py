"""Figure 5 — viewing percentage vs view refresh rate X (700 kbps, fanout 7).

Paper shape: best performance at X = 1; quality decreases as the partner set
is refreshed less often, and a completely static mesh (X = ∞) is bad even for
offline viewing because load concentrates on a few nodes for the whole run.
"""

import pytest

from repro.experiments.figures import figure5_refresh_rate


def test_figure5_refresh_rate(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure5_refresh_rate,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    offline = result.series_by_label("offline viewing")
    ten_second = result.series_by_label("10s lag")
    static_x = -1.0  # the sweep encodes X = infinity as -1

    # X = 1 is (one of) the best settings; the static mesh is clearly worse.
    assert offline.y_at(1.0) >= offline.max_y() - 10.0
    assert offline.y_at(1.0) > offline.y_at(static_x) + 20.0
    # The decline is steepest for the shortest lag (the paper's observation
    # that the 10 s-lag curve has the most negative slope).
    drop_offline = offline.y_at(1.0) - offline.y_at(static_x)
    drop_ten = ten_second.y_at(1.0) - ten_second.y_at(static_x)
    assert drop_ten >= drop_offline - 1e-9


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Figure 6 uses X = infinity with feed-me; X-sweep runs are not reused."""
    yield
    bench_cache.clear()
