"""Figure 5 — viewing percentage vs view refresh rate X (700 kbps, fanout 7).

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure5``).
"""

import pytest

from repro.bench.figure_checks import check_figure5
from repro.experiments.figures import figure5_refresh_rate


def test_figure5_refresh_rate(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure5_refresh_rate,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure5(result, bench_scale, bench_cache)


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Figure 6 uses X = infinity with feed-me; X-sweep runs are not reused."""
    yield
    bench_cache.clear()
