"""Figure 7 — percentage of surviving nodes unaffected by catastrophic churn.

Paper shape: a fully dynamic mesh (X = 1) keeps the largest fraction of
survivors completely unaffected (≈ 70 % at 20 % churn); the fraction shrinks
with the churn intensity; static and semi-static meshes are far worse and
highly variable.
"""

from repro.experiments.figures import figure7_churn_unaffected


def test_figure7_churn_unaffected(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure7_churn_unaffected,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    smallest_churn = min(bench_scale.churn_grid) * 100.0
    largest_churn = max(bench_scale.churn_grid) * 100.0
    dynamic_20s = result.series_by_label("20s lag, X=1")
    static_20s = result.series_by_label("20s lag, X=inf")

    # A dynamic mesh keeps a sizeable fraction of survivors fully unaffected
    # at light churn, and beats the static mesh there.
    assert dynamic_20s.y_at(smallest_churn) >= 40.0
    assert dynamic_20s.y_at(smallest_churn) >= static_20s.y_at(smallest_churn)
    # Heavier churn leaves fewer nodes untouched than light churn.
    assert dynamic_20s.y_at(largest_churn) <= dynamic_20s.y_at(smallest_churn) + 1e-9
