"""Figure 7 — percentage of surviving nodes unaffected by catastrophic churn.

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure7``).
"""

from repro.bench.figure_checks import check_figure7
from repro.experiments.figures import figure7_churn_unaffected


def test_figure7_churn_unaffected(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure7_churn_unaffected,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure7(result, bench_scale, bench_cache)
