"""Parallel sweep speedup — wall-clock of `--jobs N` vs the serial path.

Runs one ≥ 12-point sweep (fanout × upload-cap grid at the selected scale)
twice — serially and on a multiprocess executor — verifies the results are
identical, and reports the wall-clock speedup.  This is the number the
``repro.sweep`` subsystem exists to move: on a 4-core machine the sweep is
embarrassingly parallel and the speedup should approach the worker count
(≥ 2.5× on 4 workers); on fewer cores the measured speedup is bounded by
the hardware, which the JSON report records via ``cpu_count``.

Standalone (used by the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --smoke --jobs 2 \
        --json benchmarks/results/sweep_parallel.json

Full run (reduced scale)::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.experiments.scale import scale_by_name
from repro.sweep import (
    ParallelExecutor,
    SerialExecutor,
    SweepGrid,
    SweepSpec,
    aggregate,
    aggregate_table,
    run_sweep,
)


def sweep_spec(scale_name: str) -> SweepSpec:
    """A 12-point sweep: 6 fanouts × 2 upload caps at the given scale."""
    scale = scale_by_name(scale_name)
    fanouts = tuple(scale.fanout_grid[:6])
    return SweepSpec(
        name="bench-sweep-parallel",
        scale_name=scale_name,
        grid=SweepGrid(fanouts=fanouts, caps_kbps=(None, 2000.0)),
        replicas=1,
    )


def measure(scale_name: str, jobs: int) -> dict:
    """Run the sweep serially and with ``jobs`` workers; return the report."""
    scale = scale_by_name(scale_name)
    spec = sweep_spec(scale_name)
    tasks = spec.expand()
    print(f"sweep: {len(tasks)} points at scale {scale_name!r}, {jobs} workers")

    started = time.perf_counter()
    serial = run_sweep(scale, tasks, executor=SerialExecutor())
    serial_seconds = time.perf_counter() - started
    print(f"  serial:   {serial_seconds:.2f}s")

    started = time.perf_counter()
    parallel = run_sweep(scale, tasks, executor=ParallelExecutor(jobs=jobs))
    parallel_seconds = time.perf_counter() - started
    print(f"  parallel: {parallel_seconds:.2f}s ({jobs} workers)")

    if serial.results != parallel.results:
        raise AssertionError("parallel sweep results differ from the serial ones")
    if aggregate_table(aggregate(serial.results)) != aggregate_table(
        aggregate(parallel.results)
    ):
        raise AssertionError("parallel aggregate table differs from the serial one")
    print("  determinism: parallel results byte-identical to serial ✓")

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    print(f"  speedup: {speedup:.2f}x")
    return {
        "benchmark": "sweep_parallel",
        "scale": scale_name,
        "points": len(tasks),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "identical_results": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="reduced", help="experiment scale (default: reduced)")
    parser.add_argument("--jobs", type=int, default=4, help="parallel worker count (default: 4)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the smoke scale: checks the harness, not the number",
    )
    parser.add_argument("--json", metavar="PATH", help="write the report as JSON to PATH")
    args = parser.parse_args()

    scale_name = "smoke" if args.smoke else args.scale
    report = measure(scale_name, args.jobs)

    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"report written to {path}")


if __name__ == "__main__":
    main()
