"""Parallel sweep speedup — thin shim over the registered ``sweep-parallel`` benchmark.

The implementation lives in :mod:`repro.bench.suite`: one 12-point sweep
(6 fanouts × 2 upload caps) runs serially and on a multiprocess executor,
the results are asserted identical, and the wall-clock speedup is reported.
On a 1-core container the speedup is bounded at ~1×; the report records
``cpu_count`` in its host hints so the number stays interpretable.

Standalone (used by the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --smoke --jobs 2 \
        --json benchmarks/results/sweep_parallel.json

Full run (reduced scale)::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py --jobs 4
"""

from __future__ import annotations

import argparse

from repro.bench import default_registry
from repro.bench.runner import run_selected


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="reduced", help="experiment scale (default: reduced)")
    parser.add_argument("--jobs", type=int, default=4, help="parallel worker count (default: 4)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use the smoke scale: checks the harness, not the number",
    )
    parser.add_argument("--json", metavar="PATH", help="write the unified report to PATH")
    args = parser.parse_args()

    report = run_selected(
        default_registry(),
        patterns=["sweep-parallel"],
        scale_name="smoke" if args.smoke else args.scale,
        options={"jobs": str(args.jobs)},
    )
    if args.json:
        print(f"report written to {report.write(args.json)}")


if __name__ == "__main__":
    main()
