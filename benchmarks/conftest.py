"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure of the paper at the scale selected by
the ``REPRO_BENCH_SCALE`` environment variable (``smoke`` / ``reduced`` /
``paper``; default ``reduced``).  Benchmarks that analyze the same underlying
runs (Figure 2 reuses Figure 1's, Figure 8 reuses Figure 7's) share them
through a process-wide run cache; modules clear the cache when the next
figure does not need their runs, to bound memory.

Each benchmark also writes the regenerated table to
``benchmarks/results/<figure>_<scale>.txt`` (through the same writer the
unified ``repro.bench`` runner uses) so the series survive independently of
pytest's output capture.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.suite import write_figure_table
from repro.experiments.figures import FigureResult
from repro.experiments.scale import ExperimentScale, scale_by_name
from repro.sweep.cache import SummaryCache

_shared_cache = SummaryCache()


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The experiment scale used by every benchmark in this session."""
    name = os.environ.get("REPRO_BENCH_SCALE", "reduced")
    return scale_by_name(name)


@pytest.fixture(scope="session")
def bench_cache() -> SummaryCache:
    """Process-wide cache so consecutive figures reuse overlapping runs."""
    return _shared_cache


@pytest.fixture(scope="session")
def record_figure():
    """Writer that persists a figure's table under benchmarks/results/."""

    def _record(result: FigureResult) -> str:
        table = write_figure_table(result)
        print(f"\n{table}\n")
        return table

    return _record
