"""Figure 6 — viewing percentage vs feed-me request rate Y (X = ∞).

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure6``).  The X = 1 baseline the
check compares against is re-run through the same cache-backed generator.
"""

import pytest

from repro.bench.figure_checks import check_figure6
from repro.experiments.figures import figure6_feedme_rate


def test_figure6_feedme_rate(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure6_feedme_rate,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure6(result, bench_scale, bench_cache)


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """The churn figures change the failure schedule; feed-me runs are not reused."""
    yield
    bench_cache.clear()
