"""Figure 6 — viewing percentage vs feed-me request rate Y (X = ∞).

Paper shape: explicitly asking random nodes to feed you (the Y mechanism)
helps an otherwise static mesh but never beats the plain X = 1 refresh — the
extra messages can be lost or delayed exactly when the node is congested.
"""

import pytest

from repro.experiments.figures import figure5_refresh_rate, figure6_feedme_rate


def test_figure6_feedme_rate(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure6_feedme_rate,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    offline = result.series_by_label("offline viewing")
    disabled = -1.0  # Y = infinity (feed-me disabled, fully static mesh)

    # Frequent feed-me requests improve on a fully static mesh...
    assert offline.y_at(1.0) >= offline.y_at(disabled) - 1e-9

    # ...but do not beat plain X = 1 (compare against the Figure 5 baseline,
    # re-run here through the cache-backed generator at a single point).
    baseline = figure5_refresh_rate(bench_scale, bench_cache, refresh_values=(1,))
    x1_offline = baseline.series_by_label("offline viewing").y_at(1.0)
    # "does not provide any improvement over standard gossip": allow a small
    # tolerance since a single node flipping state moves these percentages by
    # a couple of points at reduced scales.
    assert x1_offline >= offline.max_y() - 10.0


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """The churn figures change the failure schedule; feed-me runs are not reused."""
    yield
    bench_cache.clear()
