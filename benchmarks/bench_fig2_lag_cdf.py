"""Figure 2 — cumulative distribution of stream lag for various fanouts (700 kbps).

Paper shape: optimal fanouts reach ~100 % of nodes after a small critical
lag; moderately larger fanouts shift the critical lag right; oversized
fanouts never reach most nodes within reasonable lags.

As in Figure 1's benchmark, the "oversized fanouts lose" ordering only
exists where the upload caps saturate; at scales without a collapse regime
(``fanout_collapse_expected`` False, i.e. smoke) the largest fanout must
instead also reach (almost) everyone within the plotted lags.
"""

import pytest

from repro.experiments.figures import figure2_lag_cdf


def test_figure2_lag_cdf(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure2_lag_cdf,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    largest_lag = max(bench_scale.fig2_lag_grid)
    optimal_label = f"fanout {bench_scale.optimal_fanout}"
    try:
        optimal_series = result.series_by_label(optimal_label)
    except KeyError:
        pytest.skip(f"scale {bench_scale.name} does not plot the optimal fanout in figure 2")

    # Every series is a CDF: monotone, bounded by 100.
    for series in result.series:
        ys = series.ys()
        assert all(later >= earlier - 1e-9 for earlier, later in zip(ys, ys[1:]))
        assert all(0.0 <= y <= 100.0 for y in ys)

    # The optimal fanout reaches (almost) everyone within the plotted lags.
    assert optimal_series.y_at(largest_lag) >= 90.0
    largest_fanout = max(bench_scale.fig2_fanouts)
    oversized_series = result.series_by_label(f"fanout {largest_fanout}")
    if bench_scale.fanout_collapse_expected:
        # ... and does so faster than the largest fanout in the plot.
        mid_lag = bench_scale.fig2_lag_grid[len(bench_scale.fig2_lag_grid) // 3]
        assert optimal_series.y_at(mid_lag) >= oversized_series.y_at(mid_lag)
    else:
        # No collapse regime at this scale: the largest fanout also serves
        # (almost) everyone within the plotted lags.
        assert oversized_series.y_at(largest_lag) >= 90.0


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Figures 3+ use different caps/knobs; free Figure 1/2's cached runs."""
    yield
    bench_cache.clear()
