"""Figure 2 — cumulative distribution of stream lag for various fanouts (700 kbps).

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure2``).
"""

import pytest

from repro.bench.figure_checks import FigureCheckSkipped, check_figure2
from repro.experiments.figures import figure2_lag_cdf


def test_figure2_lag_cdf(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure2_lag_cdf,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    try:
        check_figure2(result, bench_scale, bench_cache)
    except FigureCheckSkipped as skip:
        pytest.skip(str(skip))


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Figures 3+ use different caps/knobs; free Figure 1/2's cached runs."""
    yield
    bench_cache.clear()
