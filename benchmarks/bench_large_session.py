"""Large-session fast path — thin shim over the registered ``large-session`` benchmark.

The implementation lives in :mod:`repro.bench.suite`: the ``large-session``
scenario (1,000 nodes at the paper's 600 kbps / 101 + 9 window geometry by
default) is run once, then the metrics and codec fast paths are timed
**in-process against the preserved pre-fast-path implementations on the
session's own data**, asserting result equality before reporting a speedup.
Those speedup ratios — not wall-clock — are what the baseline gate checks.

Standalone (used by the CI smoke job at a tiny size)::

    PYTHONPATH=src python benchmarks/bench_large_session.py --smoke \
        --json benchmarks/results/large_session.json

Full flagship run (a few minutes on one core)::

    PYTHONPATH=src python benchmarks/bench_large_session.py \
        --json benchmarks/results/large_session.json
"""

from __future__ import annotations

import argparse

from repro.bench import default_registry
from repro.bench.runner import run_selected
from repro.bench.suite import measure_codec_stage, measure_metrics_stage  # noqa: F401


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny variant (60 nodes, 3 windows): checks the harness, not the number",
    )
    parser.add_argument("--nodes", type=int, help="override the node count")
    parser.add_argument("--windows", type=int, help="override the stream length in windows")
    parser.add_argument(
        "--codec-windows",
        type=int,
        metavar="N",
        help="windows to encode+decode in the codec stage (default: 4)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the unified report to PATH")
    args = parser.parse_args()

    # The ``smoke`` scale already means a tiny session with a 4-window codec
    # stage; explicit flags override it, mirroring the historical CLI.
    options = {}
    if args.nodes is not None:
        options["nodes"] = str(args.nodes)
    if args.windows is not None:
        options["windows"] = str(args.windows)
    if args.codec_windows is not None:
        options["codec_windows"] = str(args.codec_windows)
    report = run_selected(
        default_registry(),
        patterns=["large-session"],
        scale_name="smoke" if args.smoke else "xlarge",
        options=options,
    )
    if args.json:
        print(f"report written to {report.write(args.json)}")


if __name__ == "__main__":
    main()
