"""Large-session fast path — 1,000 nodes at paper stream ratios, per-stage timings.

Runs the registered ``large-session`` scenario (1,000 nodes, the paper's
600 kbps / 101 + 9-packet window geometry) on one core, then measures the
two fast-path stages **in-process against the preserved pre-fast-path
implementations on the session's own data**:

* **metrics stage** — building the quality analyzer and extracting the
  figure-facing curves (viewing percentages, complete-window ratio, the
  Figure 2 lag CDF): one-pass
  :class:`~repro.metrics.quality.StreamQualityAnalyzer` vs the per-call
  :class:`~repro.metrics.reference.ReferenceQualityAnalyzer`;
* **codec stage** — RS encode + max-erasure decode of the stream's windows:
  the translate-table bulk path vs the scalar byte-at-a-time matrix path
  (:func:`repro.streaming.fec.reference_encode` / ``reference_decode``).

Both comparisons assert result equality before reporting a speedup, so the
numbers cannot drift from correctness.  Wall-clock enters the JSON report
only as information — determinism tests never gate on it.

Standalone (used by the CI smoke job at a tiny size)::

    PYTHONPATH=src python benchmarks/bench_large_session.py --smoke \
        --json benchmarks/results/large_session.json

Full flagship run (a few minutes on one core)::

    PYTHONPATH=src python benchmarks/bench_large_session.py \
        --json benchmarks/results/large_session.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time
from pathlib import Path

from repro.experiments.scale import XLARGE
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.metrics.reference import ReferenceQualityAnalyzer
from repro.scenarios import build_scenario
from repro.scenarios.builder import run_spec
from repro.streaming.fec import ReedSolomonCode, reference_decode, reference_encode
from repro.streaming.schedule import StreamConfig

VIEWING_LAGS = (10.0, 20.0, OFFLINE_LAG)
WINDOW_LAGS = (20.0,)
LAG_CDF_GRID = XLARGE.fig2_lag_grid


def run_session_stage(spec) -> tuple:
    print(f"session: {spec.describe()}")
    started = time.perf_counter()
    result = run_spec(spec)
    wall = time.perf_counter() - started
    events_per_second = result.events_processed / wall if wall > 0 else 0.0
    print(
        f"  {result.events_processed:,} events in {wall:.1f}s "
        f"-> {events_per_second:,.0f} events/s; "
        f"{result.deliveries.total_deliveries:,} deliveries"
    )
    return result, {
        "wall_seconds": round(wall, 3),
        "events_processed": result.events_processed,
        "events_per_second": round(events_per_second, 1),
        "total_deliveries": result.deliveries.total_deliveries,
        "delivery_ratio": round(result.delivery_ratio(), 6),
        "viewing_pct_offline": round(result.viewing_percentage(), 3),
        "viewing_pct_10s": round(result.viewing_percentage(lag=10.0), 3),
    }


def extract_curves(analyzer) -> dict:
    """The figure-facing extraction both analyzers must agree on."""
    return {
        "viewing": [analyzer.viewing_ratio(lag) for lag in VIEWING_LAGS],
        "complete": [analyzer.average_complete_window_ratio(lag) for lag in WINDOW_LAGS],
        "lag_cdf": analyzer.lag_cdf(LAG_CDF_GRID),
    }


def measure_metrics_stage(result) -> dict:
    schedule, deliveries = result.schedule, result.deliveries
    nodes = result.survivors()

    started = time.perf_counter()
    fast_curves = extract_curves(StreamQualityAnalyzer(schedule, deliveries, nodes))
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference_curves = extract_curves(ReferenceQualityAnalyzer(schedule, deliveries, nodes))
    reference_seconds = time.perf_counter() - started

    if fast_curves != reference_curves:
        raise AssertionError("fast metrics stage diverged from the reference implementation")
    speedup = reference_seconds / fast_seconds if fast_seconds > 0 else 0.0
    print(
        f"metrics stage: fast {fast_seconds * 1000:.1f}ms vs reference "
        f"{reference_seconds * 1000:.1f}ms -> {speedup:.1f}x (identical results)"
    )
    return {
        "fast_seconds": round(fast_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_results": True,
        "nodes_analyzed": len(nodes),
        "lag_values_evaluated": len(VIEWING_LAGS) + len(WINDOW_LAGS) + len(LAG_CDF_GRID),
        "_fast_raw": fast_seconds,
        "_reference_raw": reference_seconds,
    }


def measure_codec_stage(stream: StreamConfig, windows_timed: int, seed: int = 7) -> dict:
    """Encode + max-erasure decode of real-geometry windows, bulk vs scalar."""
    rng = random.Random(seed)
    code = ReedSolomonCode(stream.source_packets_per_window, stream.fec_packets_per_window)
    window_payloads = [
        [
            bytes(rng.randrange(256) for _ in range(stream.payload_bytes))
            for _ in range(stream.source_packets_per_window)
        ]
        for _ in range(windows_timed)
    ]
    erasures = [
        set(rng.sample(range(code.total_shards), code.parity_shards))
        for _ in range(windows_timed)
    ]

    def erase(codeword, erased):
        return {i: s for i, s in enumerate(codeword) if i not in erased}

    started = time.perf_counter()
    fast_out = []
    for data, erased in zip(window_payloads, erasures):
        codeword = list(data) + code.encode(data)
        fast_out.append(code.decode(erase(codeword, erased)))
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reference_out = []
    for data, erased in zip(window_payloads, erasures):
        codeword = list(data) + reference_encode(code, data)
        reference_out.append(reference_decode(code, erase(codeword, erased)))
    reference_seconds = time.perf_counter() - started

    if fast_out != reference_out or any(out != data for out, data in zip(fast_out, window_payloads)):
        raise AssertionError("bulk codec diverged from the scalar reference implementation")
    speedup = reference_seconds / fast_seconds if fast_seconds > 0 else 0.0
    print(
        f"codec stage ({windows_timed} windows of "
        f"{stream.source_packets_per_window}+{stream.fec_packets_per_window} x "
        f"{stream.payload_bytes}B): fast {fast_seconds * 1000:.1f}ms vs scalar "
        f"{reference_seconds * 1000:.1f}ms -> {speedup:.1f}x (identical results)"
    )
    return {
        "windows_timed": windows_timed,
        "fast_seconds": round(fast_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_results": True,
        "_fast_raw": fast_seconds,
        "_reference_raw": reference_seconds,
    }


def measure(num_nodes: int | None, num_windows: int | None, codec_windows: int) -> dict:
    overrides = {}
    if num_nodes is not None:
        overrides["num_nodes"] = num_nodes
    if num_windows is not None:
        overrides["stream"] = StreamConfig.paper_defaults(num_windows=num_windows)
    spec = build_scenario("large-session", **overrides)

    result, session_report = run_session_stage(spec)
    metrics_report = measure_metrics_stage(result)
    codec_report = measure_codec_stage(spec.stream, codec_windows)

    # Combine from the raw timings: the rounded per-stage report values can
    # collapse a sub-0.1 ms stage to 0.0 at smoke sizes.
    fast_total = metrics_report.pop("_fast_raw") + codec_report.pop("_fast_raw")
    reference_total = metrics_report.pop("_reference_raw") + codec_report.pop("_reference_raw")
    combined = reference_total / fast_total if fast_total > 0 else 0.0
    print(f"combined metrics+codec stage speedup: {combined:.1f}x")

    return {
        "benchmark": "large_session",
        "scenario": "large-session",
        "num_nodes": spec.num_nodes,
        "num_windows": spec.stream.num_windows,
        "packets_per_window": spec.stream.packets_per_window,
        "payload_bytes": spec.stream.payload_bytes,
        "cpu_count": os.cpu_count(),
        "session": session_report,
        "metrics_stage": metrics_report,
        "codec_stage": codec_report,
        "combined_stage_speedup": round(combined, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny variant (60 nodes, 3 windows): checks the harness, not the number",
    )
    parser.add_argument("--nodes", type=int, help="override the node count")
    parser.add_argument("--windows", type=int, help="override the stream length in windows")
    parser.add_argument(
        "--codec-windows",
        type=int,
        default=None,
        metavar="N",
        help="windows to encode+decode in the codec stage (default: 4; 1 with --smoke)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the report as JSON to PATH")
    args = parser.parse_args()

    num_nodes = args.nodes
    num_windows = args.windows
    codec_windows = args.codec_windows
    if args.smoke:
        num_nodes = 60 if num_nodes is None else num_nodes
        num_windows = 3 if num_windows is None else num_windows
        codec_windows = 1 if codec_windows is None else codec_windows
    if codec_windows is None:
        codec_windows = 4

    report = measure(num_nodes, num_windows, codec_windows)

    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"report written to {path}")


if __name__ == "__main__":
    main()
