"""Figure 8 — average percentage of complete windows for survivors vs churn.

Paper shape: with X = 1 the protocol is almost unaffected — survivors decode
over 90 % of the windows at every churn level below 80 % — while static
meshes lose a large share of the stream.  The missing windows concentrate in
a few seconds around the churn event (the failure-detection window).
"""

import pytest

from repro.experiments.figures import figure8_churn_windows


def test_figure8_churn_windows(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure8_churn_windows,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    dynamic = result.series_by_label("20s lag, X=1")
    static = result.series_by_label("20s lag, X=inf")
    moderate_churn = [x for x in dynamic.xs() if x <= 50.0]

    # X = 1 keeps survivors above 90 % complete windows for moderate churn.
    for churn in moderate_churn:
        assert dynamic.y_at(churn) >= 85.0
    # And outperforms the fully static mesh on average (the gap is wide at
    # the reduced/paper scales and narrower at the smoke scale, where a
    # 30-node static graph is still fairly well connected).
    dynamic_mean = sum(dynamic.ys()) / len(dynamic.ys())
    static_mean = sum(static.ys()) / len(static.ys())
    assert dynamic_mean > static_mean


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Last figure: release all cached churn runs."""
    yield
    bench_cache.clear()
