"""Figure 8 — average percentage of complete windows for survivors vs churn.

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure8``).
"""

import pytest

from repro.bench.figure_checks import check_figure8
from repro.experiments.figures import figure8_churn_windows


def test_figure8_churn_windows(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure8_churn_windows,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure8(result, bench_scale, bench_cache)


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Last figure: release all cached churn runs."""
    yield
    bench_cache.clear()
