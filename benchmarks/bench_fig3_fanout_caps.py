"""Figure 3 — fanout sweep under 1000 / 2000 kbps upload caps.

Paper shape: as the cap loosens, the region of good fanouts widens and moves
right; at 2000 kbps even very large fanouts keep offline and 10 s-lag quality
high.
"""

from repro.experiments.figures import figure3_fanout_relaxed_caps


def test_figure3_fanout_relaxed_caps(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure3_fanout_relaxed_caps,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    largest = float(max(bench_scale.fanout_grid))
    loosest_cap = max(bench_scale.fig3_caps_kbps)
    loose_offline = result.series_by_label(f"offline viewing, {loosest_cap:.0f}kbps cap")
    loose_ten = result.series_by_label(f"10s lag, {loosest_cap:.0f}kbps cap")

    # With plenty of headroom the largest fanout still performs well offline.
    assert loose_offline.y_at(largest) >= 70.0
    # And the optimal fanout is excellent at every cap.
    optimal = float(bench_scale.optimal_fanout)
    for series in result.series:
        assert series.y_at(optimal) >= 80.0
    # 10 s-lag viewing never exceeds offline viewing.
    for fanout in loose_ten.xs():
        assert loose_ten.y_at(fanout) <= loose_offline.y_at(fanout) + 1e-9
