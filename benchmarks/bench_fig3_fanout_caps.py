"""Figure 3 — fanout sweep under 1000 / 2000 kbps upload caps.

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure3``).
"""

from repro.bench.figure_checks import check_figure3
from repro.experiments.figures import figure3_fanout_relaxed_caps


def test_figure3_fanout_relaxed_caps(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure3_fanout_relaxed_caps,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure3(result, bench_scale, bench_cache)
