"""Observer-layer overhead guard: hooks must be free until armed.

The validation observer edges (:mod:`repro.validation.observers`) sit on the
three hottest paths of the simulator — event dispatch, datagram send and
packet delivery.  Their contract is *zero cost when idle*: with no observer
registered each edge pays a single ``is None`` test.  This benchmark
measures the same session three ways:

* **unobserved** — no observers registered (the production default);
* **no-op observer** — a do-nothing :class:`SessionObserver` attached
  everywhere (the price of the dispatch loops themselves);
* **armed invariants** — the full :class:`InvariantSuite` (the price of
  actually validating every edge).

Run standalone (prints events/sec per mode and overhead ratios; the CI
smoke job checks the harness, not the numbers — this container's timings
are too noisy for a hard threshold in CI)::

    PYTHONPATH=src python benchmarks/bench_observer_overhead.py [--smoke] \
        [--json benchmarks/results/observer_overhead.json]

The ``--assert-idle-overhead PCT`` flag turns the idle-path guarantee into
a hard failure (used manually when touching the hot paths; the PR bar is
"unobserved throughput regresses ≤ 2% vs the pre-observer tree").
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.session import StreamingSession
from repro.validation import InvariantSuite, SessionObserver, attach_session_observer

from bench_engine_throughput import throughput_config


def _run_session(num_nodes: int, num_windows: int, mode: str) -> tuple[int, float]:
    """One full session in the given mode; returns (events, seconds)."""
    session = StreamingSession(throughput_config(num_nodes=num_nodes, num_windows=num_windows))
    session.build()
    suite = None
    if mode == "noop":
        attach_session_observer(session, SessionObserver())
    elif mode == "invariants":
        suite = InvariantSuite.default().attach(session)
    started = time.perf_counter()
    result = session.run()
    if suite is not None:
        suite.finalize(result)
    elapsed = time.perf_counter() - started
    return result.events_processed, elapsed


def measure(num_nodes: int, num_windows: int, repeat: int) -> dict:
    """Best-of-``repeat`` events/sec for each observation mode."""
    _run_session(15, 4, "unobserved")  # warm-up
    report: dict = {"num_nodes": num_nodes, "num_windows": num_windows, "repeat": repeat}
    for mode in ("unobserved", "noop", "invariants"):
        best = 0.0
        for _ in range(repeat):
            events, elapsed = _run_session(num_nodes, num_windows, mode)
            best = max(best, events / elapsed)
        report[mode] = best
        print(f"  {mode:12s} {best:>10,.0f} events/s")
    report["noop_overhead"] = report["unobserved"] / report["noop"] - 1.0
    report["invariant_overhead"] = report["unobserved"] / report["invariants"] - 1.0
    print(
        f"overhead: no-op observer {report['noop_overhead']:+.1%}, "
        f"armed invariants {report['invariant_overhead']:+.1%}"
    )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=40, help="session size incl. source")
    parser.add_argument("--windows", type=int, default=30, help="stream length in windows")
    parser.add_argument("--repeat", type=int, default=3, help="measurement repetitions")
    parser.add_argument("--json", metavar="PATH", help="write the report as JSON")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny single run for CI: checks the harness, not the numbers",
    )
    parser.add_argument(
        "--assert-idle-overhead",
        type=float,
        metavar="PCT",
        help="fail if the no-op-observer overhead exceeds PCT percent",
    )
    args = parser.parse_args()
    if args.smoke:
        report = measure(num_nodes=20, num_windows=6, repeat=1)
    else:
        report = measure(num_nodes=args.nodes, num_windows=args.windows, repeat=args.repeat)
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"report written to {path}")
    if args.assert_idle_overhead is not None:
        limit = args.assert_idle_overhead / 100.0
        if report["noop_overhead"] > limit:
            raise SystemExit(
                f"no-op observer overhead {report['noop_overhead']:+.1%} exceeds "
                f"the {limit:+.1%} bound"
            )


if __name__ == "__main__":
    main()
