"""Observer-layer overhead guard — thin shim over ``observer-overhead``.

The implementation lives in :mod:`repro.bench.suite`: the same session is
run unobserved, with a do-nothing :class:`SessionObserver` attached, and
with the full :class:`InvariantSuite` armed; the hooks' contract is *zero
cost when idle*.

Run standalone (prints events/sec per mode and overhead ratios; equivalent
to ``python -m repro.bench run --filter observer-overhead``)::

    PYTHONPATH=src python benchmarks/bench_observer_overhead.py [--smoke] \
        [--json benchmarks/results/observer_overhead.json]

The ``--assert-idle-overhead PCT`` flag turns the idle-path guarantee into
a hard failure (used manually when touching the hot paths; the PR bar is
"unobserved throughput regresses ≤ 2% vs the pre-observer tree").
"""

from __future__ import annotations

import argparse

from repro.bench import default_registry
from repro.bench.runner import run_selected


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, help="session size incl. source")
    parser.add_argument("--windows", type=int, help="stream length in windows")
    parser.add_argument("--repeat", type=int, help="measurement repetitions")
    parser.add_argument("--json", metavar="PATH", help="write the unified report to PATH")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smoke scale, single run for CI: checks the harness, not the numbers",
    )
    parser.add_argument(
        "--assert-idle-overhead",
        type=float,
        metavar="PCT",
        help="fail if the no-op-observer overhead exceeds PCT percent",
    )
    args = parser.parse_args()
    options = {}
    if args.nodes is not None:
        options["nodes"] = str(args.nodes)
    if args.windows is not None:
        options["windows"] = str(args.windows)
    report = run_selected(
        default_registry(),
        patterns=["observer-overhead"],
        scale_name="smoke" if args.smoke else "reduced",
        options=options,
        repeats_override=args.repeat,
    )
    if args.json:
        print(f"report written to {report.write(args.json)}")
    metrics = report.results[0].metrics
    if args.assert_idle_overhead is not None:
        limit = args.assert_idle_overhead / 100.0
        if metrics["noop_overhead"] > limit:
            raise SystemExit(
                f"no-op observer overhead {metrics['noop_overhead']:+.1%} exceeds "
                f"the {limit:+.1%} bound"
            )


if __name__ == "__main__":
    main()
