"""Figure 4 — distribution of per-node upload bandwidth usage.

Thin pytest shim: the generator lives in :mod:`repro.experiments.figures`,
the paper-shape assertions in :mod:`repro.bench.figure_checks` (shared with
``python -m repro.bench run --filter figure4``).
"""

import pytest

from repro.bench.figure_checks import check_figure4
from repro.experiments.figures import figure4_bandwidth_usage


def test_figure4_bandwidth_usage(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure4_bandwidth_usage,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)
    check_figure4(result, bench_scale, bench_cache)


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Figure 5 sweeps X at the default cap; Figure 3/4 runs are not reused."""
    yield
    bench_cache.clear()
