"""Figure 4 — distribution of per-node upload bandwidth usage.

Paper shape: contributions are heterogeneous even under a homogeneous cap;
with tight caps (700 kbps) the distribution flattens because saturated good
nodes push work onto others, while with spare capacity (2000 kbps) the best
connected nodes dominate.
"""

import pytest

from repro.experiments.figures import figure4_bandwidth_usage


def test_figure4_bandwidth_usage(benchmark, bench_scale, bench_cache, record_figure):
    result = benchmark.pedantic(
        figure4_bandwidth_usage,
        args=(bench_scale, bench_cache),
        iterations=1,
        rounds=1,
    )
    record_figure(result)

    # Usage is averaged over the whole run, so the throttling limiter keeps
    # every node at (or marginally below) its configured cap.
    for series in result.series:
        ys = series.ys()
        # Sorted by contribution, largest first.
        assert all(earlier >= later - 1e-9 for earlier, later in zip(ys, ys[1:]))
        cap = float(series.label.rsplit(",", 1)[1].replace("kbps cap", "").strip())
        assert max(ys) <= cap * 1.05

    # Heterogeneity: the top contributor works clearly harder than the median node.
    for series in result.series:
        ys = series.ys()
        median = ys[len(ys) // 2]
        if median > 0:
            assert ys[0] >= median


@pytest.fixture(scope="module", autouse=True)
def clear_cache_after_module(bench_cache):
    """Figure 5 sweeps X at the default cap; Figure 3/4 runs are not reused."""
    yield
    bench_cache.clear()
