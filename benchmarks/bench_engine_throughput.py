"""Engine throughput — simulated events per second of wall-clock time.

Unlike the figure benchmarks, this one measures the *simulator*, not the
protocol: how many discrete events the engine can execute per second while
running a fully-wired streaming session (gossip timers, upload limiters,
latency sampling, delivery bookkeeping).  It is the number every hot-path
optimisation must move; the history lives in ``CHANGES.md``.

Run through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q

or standalone (prints events/sec; used by the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import time

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, SessionResult, StreamingSession
from repro.network.transport import NetworkConfig
from repro.streaming.schedule import StreamConfig


def throughput_config(num_nodes: int = 40, num_windows: int = 30, seed: int = 99) -> SessionConfig:
    """A mid-sized, congestion-free session dominated by engine work."""
    return SessionConfig(
        num_nodes=num_nodes,
        seed=seed,
        gossip=GossipConfig(fanout=7, refresh_every=1, retransmit_timeout=2.0),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=num_windows,
        ),
        network=NetworkConfig(upload_cap_kbps=700.0, max_backlog_seconds=10.0),
        extra_time=20.0,
    )


def run_once(config: SessionConfig) -> SessionResult:
    """Run one session to completion (the benchmarked unit of work)."""
    return StreamingSession(config).run()


def measure(num_nodes: int, num_windows: int, repeat: int) -> float:
    """Best-of-``repeat`` events/sec for the given session size."""
    run_once(throughput_config(num_nodes=15, num_windows=4))  # warm-up
    best = 0.0
    for _ in range(repeat):
        config = throughput_config(num_nodes=num_nodes, num_windows=num_windows)
        started = time.perf_counter()
        result = run_once(config)
        elapsed = time.perf_counter() - started
        rate = result.events_processed / elapsed
        best = max(best, rate)
        print(f"  {result.events_processed:,} events in {elapsed:.2f}s -> {rate:,.0f} events/s")
    return best


def test_engine_throughput(benchmark):
    """pytest-benchmark entry point: one full session per round."""
    config = throughput_config()
    result = benchmark.pedantic(run_once, args=(config,), iterations=1, rounds=3)
    assert result.events_processed > 10_000
    assert result.delivery_ratio() > 0.9
    events_per_second = result.events_processed / benchmark.stats.stats.min
    print(f"\nengine throughput: {events_per_second:,.0f} events/s (best round)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=40, help="session size incl. source")
    parser.add_argument("--windows", type=int, default=30, help="stream length in windows")
    parser.add_argument("--repeat", type=int, default=3, help="measurement repetitions")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny single run for CI: checks the harness, not the number",
    )
    args = parser.parse_args()
    if args.smoke:
        best = measure(num_nodes=20, num_windows=6, repeat=1)
    else:
        best = measure(num_nodes=args.nodes, num_windows=args.windows, repeat=args.repeat)
    print(f"best: {best:,.0f} events/s")


if __name__ == "__main__":
    main()
