"""Engine throughput — thin shim over the registered ``engine-throughput`` benchmark.

The implementation lives in :mod:`repro.bench.suite`; this file keeps the
historical entry points working.

Run through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py -q

or standalone (prints events/sec; equivalent to
``python -m repro.bench run --filter engine-throughput``)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse

from repro.bench import default_registry
from repro.bench.runner import run_selected
from repro.bench.suite import run_once, throughput_config  # noqa: F401  (legacy imports)


def test_engine_throughput(benchmark):
    """pytest-benchmark entry point: one full session per round."""
    config = throughput_config()
    result = benchmark.pedantic(run_once, args=(config,), iterations=1, rounds=3)
    assert result.events_processed > 10_000
    assert result.delivery_ratio() > 0.9
    events_per_second = result.events_processed / benchmark.stats.stats.min
    print(f"\nengine throughput: {events_per_second:,.0f} events/s (best round)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, help="session size incl. source")
    parser.add_argument("--windows", type=int, help="stream length in windows")
    parser.add_argument("--repeat", type=int, help="measurement repetitions")
    parser.add_argument("--json", metavar="PATH", help="write the unified report to PATH")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smoke scale, single run for CI: checks the harness, not the number",
    )
    args = parser.parse_args()
    options = {}
    if args.nodes is not None:
        options["nodes"] = str(args.nodes)
    if args.windows is not None:
        options["windows"] = str(args.windows)
    repeat = args.repeat
    if args.smoke and repeat is None:
        repeat = 1
    report = run_selected(
        default_registry(),
        patterns=["engine-throughput"],
        scale_name="smoke" if args.smoke else "reduced",
        options=options,
        repeats_override=repeat,
    )
    if args.json:
        print(f"report written to {report.write(args.json)}")
    best = report.results[0].metrics["events_per_second"]
    print(f"best: {best:,.0f} events/s")


if __name__ == "__main__":
    main()
